type t = {
  n : int;
  edges : (int * int) array;    (* u < v, sorted *)
  adj_off : int array;          (* CSR offsets, length n+1 *)
  adj : int array;              (* CSR neighbour lists, sorted per node *)
}

let canonical u v = if u < v then (u, v) else (v, u)

let of_edges ~n edge_list =
  if n < 0 then invalid_arg "Graph.of_edges: negative node count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg
          (Printf.sprintf "Graph.of_edges: edge (%d,%d) out of range" u v);
      if u = v then
        invalid_arg (Printf.sprintf "Graph.of_edges: self-loop at %d" u))
    edge_list;
  let edges =
    List.map (fun (u, v) -> canonical u v) edge_list
    |> List.sort_uniq compare |> Array.of_list
  in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    adj_off.(i + 1) <- adj_off.(i) + deg.(i)
  done;
  let adj = Array.make adj_off.(n) 0 in
  let cursor = Array.copy adj_off in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  let sort_slice lo hi =
    let slice = Array.sub adj lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 adj lo (hi - lo)
  in
  for i = 0 to n - 1 do
    sort_slice adj_off.(i) adj_off.(i + 1)
  done;
  { n; edges; adj_off; adj }

let n_nodes t = t.n
let n_edges t = Array.length t.edges
let degree t u = t.adj_off.(u + 1) - t.adj_off.(u)

let neighbors t u = Array.sub t.adj t.adj_off.(u) (degree t u)

let mem_edge t u v =
  let u, v = canonical u v in
  (* binary search in u's sorted neighbour slice *)
  let lo = ref t.adj_off.(u) and hi = ref t.adj_off.(u + 1) in
  let found = ref false in
  while (not !found) && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.adj.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid
  done;
  !found

let edges t = Array.copy t.edges
let iter_edges f t = Array.iter (fun (u, v) -> f u v) t.edges

let fold_neighbors f t u init =
  let acc = ref init in
  for k = t.adj_off.(u) to t.adj_off.(u + 1) - 1 do
    acc := f t.adj.(k) !acc
  done;
  !acc

let max_degree t =
  let best = ref 0 in
  for i = 0 to t.n - 1 do
    if degree t i > !best then best := degree t i
  done;
  !best

let avg_degree t =
  if t.n = 0 then 0.0
  else 2.0 *. float_of_int (n_edges t) /. float_of_int t.n

let pp ppf t =
  Format.fprintf ppf "graph: %d nodes, %d edges, avg degree %.2f" t.n
    (n_edges t) (avg_degree t)
