let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot ?(name = "netdiv") ?label ?color ?shape ?edge_style g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [style=filled, fillcolor=white];\n";
  for i = 0 to Graph.n_nodes g - 1 do
    let attrs = ref [] in
    let node_label =
      match label with Some f -> f i | None -> string_of_int i
    in
    attrs := Printf.sprintf "label=\"%s\"" (escape node_label) :: !attrs;
    (match color with
    | Some f -> (
        match f i with
        | Some c -> attrs := Printf.sprintf "fillcolor=\"%s\"" (escape c) :: !attrs
        | None -> ())
    | None -> ());
    (match shape with
    | Some f -> (
        match f i with
        | Some s -> attrs := Printf.sprintf "shape=%s" s :: !attrs
        | None -> ())
    | None -> ());
    Buffer.add_string buf
      (Printf.sprintf "  n%d [%s];\n" i (String.concat ", " (List.rev !attrs)))
  done;
  Graph.iter_edges
    (fun u v ->
      let attrs =
        match edge_style with
        | Some f -> (
            match f u v with
            | Some style -> Printf.sprintf " [%s]" style
            | None -> "")
        | None -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -- n%d%s;\n" u v attrs))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
