(** Graph traversal: BFS, connectivity, and BFS-layered orientation.

    The attack Bayesian network (Section VI) needs the undirected host
    graph oriented into a DAG rooted at the attacker's entry host;
    {!bfs_dag} provides that orientation. *)

val bfs : Graph.t -> int -> int array
(** [bfs g src] returns hop distances from [src]; unreachable nodes get
    [-1]. *)

val shortest_path : Graph.t -> int -> int -> int list option
(** [shortest_path g src dst] is a minimum-hop path [src; ...; dst]. *)

val components : Graph.t -> int array
(** Component id per node, ids numbered from 0 in discovery order. *)

val n_components : Graph.t -> int
val is_connected : Graph.t -> bool

val bfs_dag : Graph.t -> int -> (int * int) list
(** [bfs_dag g src] orients the edges reachable from [src] into an acyclic
    set: each edge points from the endpoint closer to [src] to the farther
    one; edges within a BFS layer point from the smaller node id to the
    larger.  Edges between unreachable nodes are dropped.  The result is a
    DAG rooted at [src] that preserves every reachable undirected edge. *)
