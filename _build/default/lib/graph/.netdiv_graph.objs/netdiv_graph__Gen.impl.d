lib/graph/gen.ml: Array Fun Graph Hashtbl List Printf Random
