lib/graph/topologies.mli: Graph Random
