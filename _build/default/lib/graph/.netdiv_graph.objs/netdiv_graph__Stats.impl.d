lib/graph/stats.ml: Array Format Fun Graph List Random Traversal
