lib/graph/cut.ml: Array Graph Hashtbl List Queue
