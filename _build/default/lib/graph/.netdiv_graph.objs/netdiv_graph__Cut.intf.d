lib/graph/cut.mli: Graph
