lib/graph/topologies.ml: Array Gen Graph Hashtbl Printf Random
