(** The Stuxnet-inspired integrated ICS of Fig. 3.

    Five IT/OT zones plus field devices:

    - Corporate sub-network [c1-c4] (WinCC/OS/DataMonitor/Historian web
      clients),
    - DMZ [z1-z4] (virus scan, WSUS, Web Navigator and OS web servers),
    - Operations network [p1-p3] (Historian client, SIMATIC IT server,
      SIMATIC SQL server — the legacy zone),
    - Control network [t1-t6] (maintenance server, OS client, WinCC
      client, OS server and two WinCC servers),
    - Clients network [e1-e4], Remote clients [r1-r5], Vendors support
      [v1-v3],
    - field devices [f1-f3] (PLCs; no diversifiable services).

    Hosts within a zone are fully meshed; zones are joined exactly along
    the firewall white-list rules printed in Fig. 3 (c2,c4→z4; p2,p3→z4;
    z4→t1,t2; p1→t1,e1,r1,v1; t1,t2→e1,r1,v1), and the control servers
    t4-t6 reach the PLCs. *)

val host_names : string array
(** All 32 host names, fixing the host numbering. *)

val host : string -> int
(** Index of a host by name.
    @raise Invalid_argument for an unknown name. *)

val zones : (string * string list) list
(** Zone name to member host names. *)

val graph : unit -> Netdiv_graph.Graph.t
(** The host connectivity graph. *)

val entry_points : string list
(** The five attack entry hosts of the MTTC experiments (Table VI):
    c1, c4, e3, r4, v1. *)

val target : string
(** The attack target of Section VII-C: the WinCC server t5. *)
