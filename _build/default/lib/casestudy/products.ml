module Corpus = Netdiv_vuln.Corpus
module Similarity = Netdiv_vuln.Similarity
module Network = Netdiv_core.Network
module Constr = Netdiv_core.Constr

let os = "os"
let browser = "browser"
let database = "database"

(* Restrict a curated similarity table to a product subset, preserving
   counts. *)
let restrict_table spec keep =
  let indices =
    Array.map
      (fun name ->
        let rec find i =
          if i >= Array.length spec.Corpus.products then
            invalid_arg ("Products.restrict_table: unknown " ^ name)
          else if String.equal (fst spec.Corpus.products.(i)) name then i
          else find (i + 1)
        in
        find 0)
      keep
  in
  let full = Corpus.table spec in
  let n = Array.length keep in
  let totals = Array.map (fun i -> Similarity.shared_count full i i) indices in
  let shared = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to a - 1 do
      let c = Similarity.shared_count full indices.(a) indices.(b) in
      if c > 0 then shared := (a, b, c) :: !shared
    done
  done;
  Similarity.of_counts ~products:keep ~totals ~shared:!shared

let os_products = [| "WinXP2"; "Win7"; "Ubt14.04"; "Deb8.0" |]
let wb_products = [| "IE8"; "IE10"; "Chrome" |]
let db_products = [| "MSSQL08"; "MSSQL14"; "MySQL5.5"; "MariaDB10" |]

let service_tables =
  [|
    (os, restrict_table Corpus.os_spec os_products);
    (browser, restrict_table Corpus.browser_spec wb_products);
    (database, restrict_table Corpus.database_spec db_products);
  |]

(* product indices within the restricted tables *)
let winxp = 0
let win7 = 1
let ubuntu = 2
let debian = 3
let ie8 = 0
let ie10 = 1
let mssql08 = 0
let mssql14 = 1

let s_os = 0
let s_wb = 1
let s_db = 2

let windows_os = [| winxp; win7 |]
let ie_browsers = [| ie8; ie10 |]
let ms_databases = [| mssql08; mssql14 |]
let any = [||]

(* Candidate lists per host role (see the interface for the derivation). *)
let role_services name =
  match name with
  (* corporate *)
  | "c1" (* WinCC Web Client *) -> [ (s_os, windows_os); (s_wb, ie_browsers) ]
  | "c2" (* OS Web Client *) -> [ (s_os, any); (s_wb, any) ]
  | "c3" (* DataMonitor Web Client *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers) ]
  | "c4" (* Historian Web Client *) -> [ (s_os, any); (s_wb, any) ]
  (* DMZ *)
  | "z1" (* Virus scan server *) -> [ (s_os, windows_os); (s_db, any) ]
  | "z2" (* WSUS server: Windows + Microsoft DB *) ->
      [ (s_os, windows_os); (s_db, ms_databases) ]
  | "z3" (* Web Navigator server (WinCC) *) ->
      [ (s_os, [| win7 |]); (s_wb, ie_browsers); (s_db, ms_databases) ]
  | "z4" (* OS Web server (WinCC Web Navigator): Windows + IE + MS SQL *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers); (s_db, ms_databases) ]
  (* operations (legacy zone) *)
  | "p1" (* Historian Web Client *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers) ]
  | "p2" (* SIMATIC IT server, legacy *) ->
      [ (s_os, [| winxp |]); (s_db, [| mssql08 |]) ]
  | "p3" (* SIMATIC SQL server, legacy *) ->
      [ (s_os, [| winxp |]); (s_db, [| mssql08 |]) ]
  (* control network *)
  | "t1" (* maintenance server *) ->
      [ (s_os, [| win7 |]); (s_wb, ie_browsers); (s_db, ms_databases) ]
  | "t2" (* OS client *) -> [ (s_os, windows_os); (s_wb, ie_browsers) ]
  | "t3" (* WinCC client, legacy *) ->
      [ (s_os, [| winxp |]); (s_wb, [| ie8 |]) ]
  | "t4" (* OS server *) -> [ (s_os, [| win7 |]); (s_db, ms_databases) ]
  | "t5" (* WinCC server, legacy build *) ->
      [ (s_os, [| win7 |]); (s_db, [| mssql14 |]) ]
  | "t6" (* WinCC server, legacy build *) ->
      [ (s_os, [| win7 |]); (s_db, [| mssql14 |]) ]
  (* clients *)
  | "e1" (* WinCC Web Client *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers); (s_db, any) ]
  | "e2" (* OS Web Client *) -> [ (s_os, any); (s_wb, any) ]
  | "e3" (* client workstation *) -> [ (s_os, any); (s_wb, any) ]
  | "e4" (* client historian *) -> [ (s_os, any); (s_db, any) ]
  (* remote clients *)
  | "r1" (* WinCC Web Client *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers); (s_db, any) ]
  | "r2" (* OS Web Client *) -> [ (s_os, any); (s_wb, any) ]
  | "r3" (* client workstation *) -> [ (s_os, any); (s_wb, any) ]
  | "r4" (* client workstation *) -> [ (s_os, any); (s_wb, any) ]
  | "r5" (* client historian *) -> [ (s_os, any); (s_db, any) ]
  (* vendors support *)
  | "v1" (* Historian Web Client *) ->
      [ (s_os, windows_os); (s_wb, ie_browsers) ]
  | "v2" (* vendors workstation *) -> [ (s_os, any); (s_wb, any) ]
  | "v3" (* vendors workstation *) -> [ (s_os, any); (s_wb, any) ]
  (* PLCs: nothing to diversify *)
  | "f1" | "f2" | "f3" -> []
  | other ->
      invalid_arg (Printf.sprintf "Products.host_services: unknown %S" other)

let hosts_spec () =
  Array.map
    (fun name -> { Network.h_name = name; h_services = role_services name })
    Topology.host_names

let network () =
  Network.of_similarity_tables ~graph:(Topology.graph ())
    ~services:service_tables ~hosts:(hosts_spec ())

(* Severity-weighted tables: rebuild each table from the synthetic corpus
   with CVSS-proportional weights, restricted to the Table IV products. *)
let weighted_table spec keep =
  let module Weighted = Netdiv_vuln.Weighted in
  let db = Corpus.synthesize spec in
  let products =
    Array.to_list keep
    |> List.map (fun name ->
           let rec find i =
             if i >= Array.length spec.Corpus.products then
               invalid_arg ("Products.weighted_table: unknown " ^ name)
             else if String.equal (fst spec.Corpus.products.(i)) name then
               spec.Corpus.products.(i)
             else find (i + 1)
           in
           find 0)
  in
  Weighted.of_nvd ~since:1999 ~until:2016 db products

let service_tables_weighted () =
  [|
    (os, weighted_table Corpus.os_spec os_products);
    (browser, weighted_table Corpus.browser_spec wb_products);
    (database, weighted_table Corpus.database_spec db_products);
  |]

let network_weighted () =
  Network.of_similarity_tables ~graph:(Topology.graph ())
    ~services:(service_tables_weighted ())
    ~hosts:(hosts_spec ())

(* corporate standard build for policy-fixed hosts *)
let fix host_name service product =
  Constr.Fix { host = Topology.host host_name; service; product }

let checked net cs =
  match Constr.validate_all net cs with
  | Ok () -> cs
  | Error msg -> invalid_arg ("Products: invalid constraint set: " ^ msg)

let host_constraints net =
  checked net
    [
      fix "z4" s_os winxp;
      fix "z4" s_wb ie8;
      fix "z4" s_db mssql08;
      fix "e1" s_os winxp;
      fix "e1" s_wb ie8;
      fix "e1" s_db mssql08;
      fix "r1" s_os winxp;
      fix "r1" s_wb ie8;
      fix "r1" s_db mssql08;
      fix "v1" s_os winxp;
      fix "v1" s_wb ie8;
    ]

let product_constraints net =
  checked net
  (host_constraints net
  @ [
      (* Internet Explorer does not run on Linux *)
      Constr.Forbids
        { scope = Constr.All; service_m = s_os; product_j = ubuntu;
          service_n = s_wb; product_k = ie10 };
      Constr.Forbids
        { scope = Constr.All; service_m = s_os; product_j = ubuntu;
          service_n = s_wb; product_k = ie8 };
      Constr.Forbids
        { scope = Constr.All; service_m = s_os; product_j = debian;
          service_n = s_wb; product_k = ie10 };
      Constr.Forbids
        { scope = Constr.All; service_m = s_os; product_j = debian;
          service_n = s_wb; product_k = ie8 };
    ])
