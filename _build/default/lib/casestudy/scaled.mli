(** Scaled realistic ICS instances.

    The paper's scalability study uses uniform random networks; this
    generator instead scales the case study itself: the seven IT/OT zones
    of Fig. 3 grow by a [scale] factor, hosts take the same roles (WinCC
    web client, WSUS server, legacy SIMATIC hosts, ...) with the same
    Table IV candidate catalogs, zones stay internally well-connected,
    and zones are joined by a bounded number of firewall gateway links
    along the Fig. 3 access rules.  The result is a large network with
    realistic candidate heterogeneity and frozen legacy pockets — a much
    harsher test for the optimizer than a uniform random instance. *)

type t = {
  network : Netdiv_core.Network.t;
  zone_of : int array;          (** zone index per host *)
  zone_names : string array;
  entries : int list;           (** one attack entry per IT zone *)
  target : int;                 (** a WinCC-server-role host in control *)
}

val generate : ?seed:int -> ?gateway_links:int -> scale:int -> unit -> t
(** [generate ~scale ()] builds an ICS with [scale]x the case-study zone
    sizes (so [scale = 1] has the same 32 hosts, [scale = 100] has
    3,200).
    @raise Invalid_argument if [scale < 1]. *)
