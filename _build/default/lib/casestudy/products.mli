(** Table IV: essential services and candidate products per host.

    Three services — operating system, web browser, database server — with
    the product ranges of the paper's Table IV:

    - OS: Windows XP, Windows 7, Ubuntu 14.04, Debian 8.0
    - Web browser: IE8, IE10, Chrome 50
    - Database: MS SQL 2008, MS SQL 2014, MySQL 5.5, MariaDB 10

    Similarities come from the curated CVE/NVD corpora of
    {!Netdiv_vuln.Corpus} (Tables II/III and the database table).

    The paper's per-host check-mark matrix does not survive in the
    machine-readable text, so the candidate lists are re-derived from each
    host's role exactly as Section VII-A describes: WinCC-family
    applications require a Windows OS and an IE browser (per the WinCC
    manual), the WSUS server z2 requires Windows and a Microsoft database,
    and the grey legacy hosts (p2, p3 and the WinCC-bound control hosts)
    run fixed outdated software — Windows XP and MS SQL 2008.  Flexible IT
    hosts may take any product. *)

val os : string
val browser : string
val database : string
(** Service names ("os", "browser", "database"); their ids are 0, 1, 2. *)

val service_tables : (string * Netdiv_vuln.Similarity.table) array
(** Similarity tables restricted to the Table IV product ranges, in
    service-id order. *)

val role_services : string -> (int * int array) list
(** Service list and candidate products for a case-study host role, keyed
    by host name ("c1", "z4", ...).  Used both by {!network} and by the
    {!Scaled} generator, which stamps the same roles onto larger zones.
    @raise Invalid_argument for unknown names. *)

val network : unit -> Netdiv_core.Network.t
(** The full case-study network: Fig. 3 topology plus Table IV candidate
    lists. *)

val service_tables_weighted : unit -> (string * Netdiv_vuln.Similarity.table) array
(** Severity-weighted variants of {!service_tables}: the synthetic NVD
    corpora are re-scored with {!Netdiv_vuln.Weighted.of_nvd} so shared
    critical CVEs count more than shared low-severity ones (the paper's
    future-work direction; used by the weighted-similarity ablation
    bench). *)

val network_weighted : unit -> Netdiv_core.Network.t
(** The case-study network under the weighted similarity tables. *)

val host_constraints : Netdiv_core.Network.t -> Netdiv_core.Constr.t list
(** The C1 policy of Section VII-B: hosts z4, e1, r1 and v1 are required
    to keep the company's validated legacy build (Windows XP, IE8, and MS
    SQL 2008 where they run a database) — a policy that deliberately costs
    diversity, as in the paper. *)

val product_constraints : Netdiv_core.Network.t -> Netdiv_core.Constr.t list
(** The C2 policy: C1 plus global undesirable-combination constraints
    forbidding Internet Explorer on the Linux operating systems (the
    paper's example is IE10 on Ubuntu 14.04 at host v2). *)
