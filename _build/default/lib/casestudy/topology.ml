let host_names =
  [|
    "c1"; "c2"; "c3"; "c4";
    "z1"; "z2"; "z3"; "z4";
    "p1"; "p2"; "p3";
    "t1"; "t2"; "t3"; "t4"; "t5"; "t6";
    "e1"; "e2"; "e3"; "e4";
    "r1"; "r2"; "r3"; "r4"; "r5";
    "v1"; "v2"; "v3";
    "f1"; "f2"; "f3";
  |]

let host name =
  let rec loop i =
    if i >= Array.length host_names then
      invalid_arg (Printf.sprintf "Topology.host: unknown host %S" name)
    else if String.equal host_names.(i) name then i
    else loop (i + 1)
  in
  loop 0

let zones =
  [
    ("corporate", [ "c1"; "c2"; "c3"; "c4" ]);
    ("dmz", [ "z1"; "z2"; "z3"; "z4" ]);
    ("operations", [ "p1"; "p2"; "p3" ]);
    ("control", [ "t1"; "t2"; "t3"; "t4"; "t5"; "t6" ]);
    ("clients", [ "e1"; "e2"; "e3"; "e4" ]);
    ("remote", [ "r1"; "r2"; "r3"; "r4"; "r5" ]);
    ("vendors", [ "v1"; "v2"; "v3" ]);
    ("field", [ "f1"; "f2"; "f3" ]);
  ]

(* firewall white-list rules of Fig. 3, as (source hosts, destinations) *)
let firewall_rules =
  [
    ([ "c2"; "c4" ], [ "z4" ]);
    ([ "p2"; "p3" ], [ "z4" ]);
    ([ "z4" ], [ "t1"; "t2" ]);
    ([ "p1" ], [ "t1"; "e1"; "r1"; "v1" ]);
    ([ "t1"; "t2" ], [ "e1"; "r1"; "v1" ]);
    ([ "t4"; "t5"; "t6" ], [ "f1"; "f2"; "f3" ]);
  ]

let graph () =
  let edges = ref [] in
  let add a b =
    let u = host a and v = host b in
    if u <> v then edges := (u, v) :: !edges
  in
  (* full mesh within each zone *)
  List.iter
    (fun (_, members) ->
      let rec mesh = function
        | [] -> ()
        | a :: rest ->
            List.iter (fun b -> add a b) rest;
            mesh rest
      in
      mesh members)
    zones;
  (* cross-zone links along the white-list rules *)
  List.iter
    (fun (sources, destinations) ->
      List.iter
        (fun a -> List.iter (fun b -> add a b) destinations)
        sources)
    firewall_rules;
  Netdiv_graph.Graph.of_edges ~n:(Array.length host_names) !edges

let entry_points = [ "c1"; "c4"; "e3"; "r4"; "v1" ]
let target = "t5"
