lib/casestudy/experiments.mli: Netdiv_core Netdiv_sim
