lib/casestudy/experiments.mli: Netdiv_core Netdiv_mrf Netdiv_sim
