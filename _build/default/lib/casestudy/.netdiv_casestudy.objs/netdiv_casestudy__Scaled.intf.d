lib/casestudy/scaled.mli: Netdiv_core
