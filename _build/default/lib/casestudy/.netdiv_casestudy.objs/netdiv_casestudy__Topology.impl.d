lib/casestudy/topology.ml: Array List Netdiv_graph Printf String
