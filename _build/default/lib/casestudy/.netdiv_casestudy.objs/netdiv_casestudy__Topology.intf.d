lib/casestudy/topology.mli: Netdiv_graph
