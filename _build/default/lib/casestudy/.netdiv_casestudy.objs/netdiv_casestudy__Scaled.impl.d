lib/casestudy/scaled.ml: Array Hashtbl List Netdiv_core Netdiv_graph Printf Products Random String
