lib/casestudy/experiments.ml: Hashtbl List Netdiv_bayes Netdiv_core Netdiv_sim Products Random Topology
