lib/casestudy/products.ml: Array List Netdiv_core Netdiv_vuln Printf String Topology
