lib/casestudy/products.mli: Netdiv_core Netdiv_vuln
