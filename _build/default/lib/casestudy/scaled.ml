module Graph = Netdiv_graph.Graph
module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network

type t = {
  network : Network.t;
  zone_of : int array;
  zone_names : string array;
  entries : int list;
  target : int;
}

(* zone -> base size and role cycle (case-study host names) *)
let zone_templates =
  [|
    ("corporate", [| "c1"; "c2"; "c3"; "c4" |]);
    ("dmz", [| "z1"; "z2"; "z3"; "z4" |]);
    ("operations", [| "p1"; "p2"; "p3" |]);
    ("control", [| "t1"; "t2"; "t3"; "t4"; "t5"; "t6" |]);
    ("clients", [| "e1"; "e2"; "e3"; "e4" |]);
    ("remote", [| "r1"; "r2"; "r3"; "r4"; "r5" |]);
    ("vendors", [| "v1"; "v2"; "v3" |]);
    ("field", [| "f1"; "f2"; "f3" |]);
  |]

(* zone-level firewall adjacency, following Fig. 3's white-list *)
let zone_links =
  [
    ("corporate", "dmz");
    ("operations", "dmz");
    ("dmz", "control");
    ("operations", "control");
    ("operations", "clients");
    ("operations", "remote");
    ("operations", "vendors");
    ("control", "clients");
    ("control", "remote");
    ("control", "vendors");
    ("control", "field");
  ]

let generate ?(seed = 17) ?(gateway_links = 3) ~scale () =
  if scale < 1 then invalid_arg "Scaled.generate: scale < 1";
  let rng = Random.State.make [| seed; scale |] in
  let n_zones = Array.length zone_templates in
  let zone_sizes =
    Array.map (fun (_, roles) -> Array.length roles * scale) zone_templates
  in
  let offsets = Array.make (n_zones + 1) 0 in
  for z = 0 to n_zones - 1 do
    offsets.(z + 1) <- offsets.(z) + zone_sizes.(z)
  done;
  let n = offsets.(n_zones) in
  let zone_of = Array.make n 0 in
  let host_specs = Array.make n { Network.h_name = ""; h_services = [] } in
  for z = 0 to n_zones - 1 do
    let zone_name, roles = zone_templates.(z) in
    for k = 0 to zone_sizes.(z) - 1 do
      let h = offsets.(z) + k in
      zone_of.(h) <- z;
      let role = roles.(k mod Array.length roles) in
      host_specs.(h) <-
        {
          Network.h_name = Printf.sprintf "%s%04d_%s" zone_name k role;
          h_services = Products.role_services role;
        }
    done
  done;
  (* intra-zone connectivity *)
  let edges = ref [] in
  for z = 0 to n_zones - 1 do
    let size = zone_sizes.(z) in
    let base = offsets.(z) in
    if size <= 6 then
      for i = 0 to size - 1 do
        for j = i + 1 to size - 1 do
          edges := (base + i, base + j) :: !edges
        done
      done
    else begin
      let sub = Gen.connected_avg_degree ~rng ~n:size ~degree:5 in
      Graph.iter_edges
        (fun u v -> edges := (base + u, base + v) :: !edges)
        sub
    end
  done;
  (* inter-zone gateways *)
  let zone_index name =
    let rec find z =
      if z >= n_zones then invalid_arg "Scaled: unknown zone"
      else if String.equal (fst zone_templates.(z)) name then z
      else find (z + 1)
    in
    find 0
  in
  List.iter
    (fun (za, zb) ->
      let za = zone_index za and zb = zone_index zb in
      let links = max 1 (gateway_links * scale / 4) in
      let seen = Hashtbl.create links in
      let tries = ref 0 in
      while Hashtbl.length seen < links && !tries < 64 * links do
        incr tries;
        let u = offsets.(za) + Random.State.int rng zone_sizes.(za) in
        let v = offsets.(zb) + Random.State.int rng zone_sizes.(zb) in
        if not (Hashtbl.mem seen (u, v)) then begin
          Hashtbl.replace seen (u, v) ();
          edges := (u, v) :: !edges
        end
      done)
    zone_links;
  let graph = Graph.of_edges ~n !edges in
  let network =
    Network.of_similarity_tables ~graph ~services:Products.service_tables
      ~hosts:host_specs
  in
  (* the target: the first WinCC-server role (t5) in the control zone *)
  let control = zone_index "control" in
  let target = ref (offsets.(control)) in
  (try
     for h = offsets.(control) to offsets.(control + 1) - 1 do
       let name = host_specs.(h).Network.h_name in
       let suffix = String.sub name (String.length name - 2) 2 in
       if String.equal suffix "t5" then begin
         target := h;
         raise Exit
       end
     done
   with Exit -> ());
  let entry_of zone_name =
    let z = zone_index zone_name in
    offsets.(z)
  in
  {
    network;
    zone_of;
    zone_names = Array.map fst zone_templates;
    entries =
      List.map entry_of [ "corporate"; "clients"; "remote"; "vendors" ];
    target = !target;
  }
