module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network

type params = {
  hosts : int;
  degree : int;
  services : int;
  products_per_service : int;
  seed : int;
}

let default =
  { hosts = 1000; degree = 20; services = 15; products_per_service = 4;
    seed = 1 }

let synthetic_similarity ~rng ~products =
  if products < 1 then invalid_arg "Workload.synthetic_similarity";
  let split = max 1 (products / 2) in
  let m = Array.make (products * products) 0.0 in
  for i = 0 to products - 1 do
    m.((i * products) + i) <- 1.0;
    for j = i + 1 to products - 1 do
      let same_family = (i < split) = (j < split) in
      let v =
        if same_family then 0.05 +. Random.State.float rng 0.65 else 0.0
      in
      m.((i * products) + j) <- v;
      m.((j * products) + i) <- v
    done
  done;
  m

let instance p =
  if p.hosts < 1 || p.degree < 0 || p.services < 1
     || p.products_per_service < 1
  then invalid_arg "Workload.instance: non-positive parameter";
  let rng = Random.State.make [| p.seed; p.hosts; p.degree; p.services |] in
  let graph =
    if p.degree >= 2 && p.hosts > 2 then
      Gen.connected_avg_degree ~rng ~n:p.hosts ~degree:p.degree
    else Gen.avg_degree ~rng ~n:p.hosts ~degree:p.degree
  in
  let services =
    Array.init p.services (fun s ->
        {
          Network.sv_name = Printf.sprintf "svc%d" s;
          sv_products =
            Array.init p.products_per_service (fun k ->
                Printf.sprintf "s%d_p%d" s k);
          sv_similarity =
            synthetic_similarity ~rng ~products:p.products_per_service;
        })
  in
  let all_services = List.init p.services (fun s -> (s, [||])) in
  let hosts =
    Array.init p.hosts (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = all_services })
  in
  Network.create ~graph ~services ~hosts

let pp_params ppf p =
  Format.fprintf ppf
    "%d hosts, degree %d, %d services x %d products (seed %d)" p.hosts
    p.degree p.services p.products_per_service p.seed
