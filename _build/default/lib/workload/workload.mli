(** Random diversification instances for the scalability study (Section
    VIII).

    The paper times its optimizer on randomly generated networks
    parameterized by host count, average degree and services per host.
    Instances here follow that recipe: a uniform random connected host
    graph; a catalog of [services] services, each offered by
    [products_per_service] products with a synthetic similarity matrix
    (zero across "vendor families", Jaccard-like within — mimicking the
    block structure of the real CVE tables); every host runs every
    service.  Everything is deterministic in [seed]. *)

type params = {
  hosts : int;
  degree : int;              (** average degree; paper sweeps 5-50 *)
  services : int;            (** services per host; paper sweeps 5-30 *)
  products_per_service : int;  (** paper's case study uses 3-4 *)
  seed : int;
}

val default : params
(** 1000 hosts, degree 20, 15 services, 4 products — the paper's
    mid-density configuration. *)

val instance : params -> Netdiv_core.Network.t
(** Builds the network for [params].
    @raise Invalid_argument for non-positive sizes. *)

val synthetic_similarity :
  rng:Random.State.t -> products:int -> float array
(** One synthetic similarity matrix: products are split into two vendor
    families; cross-family similarity is 0, within-family pairs get a
    Jaccard-like draw in (0, 0.7]. *)

val pp_params : Format.formatter -> params -> unit
