lib/workload/workload.ml: Array Format List Netdiv_core Netdiv_graph Printf Random
