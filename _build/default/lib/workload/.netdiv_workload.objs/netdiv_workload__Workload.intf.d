lib/workload/workload.mli: Format Netdiv_core Random
