type t = {
  vars : (int * int) array;  (* (id, cardinality), sorted by id *)
  data : float array;
}

let max_entries = 1 lsl 24

let vars t = t.vars
let data t = t.data

let table_size vars =
  Array.fold_left
    (fun acc (_, card) ->
      if card < 1 then invalid_arg "Mfactor: cardinality < 1";
      let size = acc * card in
      if size > max_entries then invalid_arg "Mfactor: table too large";
      size)
    1 vars

let check_sorted_unique vars =
  let n = Array.length vars in
  let sorted = Array.copy vars in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  for i = 1 to n - 1 do
    if fst sorted.(i) = fst sorted.(i - 1) then
      invalid_arg "Mfactor: duplicate variable"
  done;
  sorted

let of_fun ~vars f =
  let vars = check_sorted_unique vars in
  let size = table_size vars in
  let n = Array.length vars in
  let values = Array.make n 0 in
  let data =
    Array.init size (fun idx ->
        let rest = ref idx in
        for i = 0 to n - 1 do
          let card = snd vars.(i) in
          values.(i) <- !rest mod card;
          rest := !rest / card
        done;
        f values)
  in
  { vars; data }

let constant c = { vars = [||]; data = [| c |] }

let position t v =
  let rec search lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if fst t.vars.(mid) = v then mid
      else if fst t.vars.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t.vars)

(* strides of each variable position in the mixed-radix index *)
let strides vars =
  let n = Array.length vars in
  let s = Array.make n 1 in
  for i = 1 to n - 1 do
    s.(i) <- s.(i - 1) * snd vars.(i - 1)
  done;
  s

let product a b =
  let union =
    Array.to_list a.vars @ Array.to_list b.vars
    |> List.sort_uniq compare |> Array.of_list
  in
  (* a shared id with two cardinalities survives sort_uniq as two pairs *)
  for i = 1 to Array.length union - 1 do
    if fst union.(i) = fst union.(i - 1) then
      invalid_arg "Mfactor.product: cardinality mismatch"
  done;
  let size = table_size union in
  let n = Array.length union in
  let stride_for f =
    let s = strides f.vars in
    Array.map
      (fun (id, _) ->
        let p = position f id in
        if p < 0 then 0 else s.(p))
      union
  in
  let sa = stride_for a and sb = stride_for b in
  let values = Array.make n 0 in
  let data =
    Array.init size (fun idx ->
        let rest = ref idx in
        let ia = ref 0 and ib = ref 0 in
        for i = 0 to n - 1 do
          let card = snd union.(i) in
          values.(i) <- !rest mod card;
          rest := !rest / card;
          ia := !ia + (values.(i) * sa.(i));
          ib := !ib + (values.(i) * sb.(i))
        done;
        a.data.(!ia) *. b.data.(!ib))
  in
  { vars = union; data }

let drop_var t p =
  let n = Array.length t.vars in
  Array.init (n - 1) (fun i -> if i < p then t.vars.(i) else t.vars.(i + 1))

let sum_out t v =
  let p = position t v in
  if p < 0 then t
  else begin
    let card = snd t.vars.(p) in
    let s = strides t.vars in
    let stride = s.(p) in
    let vars' = drop_var t p in
    let size' = table_size vars' in
    let data' =
      Array.init size' (fun idx ->
          (* expand idx into the original index with var p set to 0 *)
          let low = idx mod stride in
          let high = idx / stride in
          let base = low + (high * stride * card) in
          let acc = ref 0.0 in
          for k = 0 to card - 1 do
            acc := !acc +. t.data.(base + (k * stride))
          done;
          !acc)
    in
    { vars = vars'; data = data' }
  end

let restrict t v value =
  let p = position t v in
  if p < 0 then t
  else begin
    let card = snd t.vars.(p) in
    if value < 0 || value >= card then
      invalid_arg "Mfactor.restrict: value out of range";
    let s = strides t.vars in
    let stride = s.(p) in
    let vars' = drop_var t p in
    let size' = table_size vars' in
    let data' =
      Array.init size' (fun idx ->
          let low = idx mod stride in
          let high = idx / stride in
          t.data.(low + (high * stride * card) + (value * stride)))
    in
    { vars = vars'; data = data' }
  end

let value t assignment =
  let s = strides t.vars in
  let idx = ref 0 in
  Array.iteri
    (fun i (id, card) ->
      match List.assoc_opt id assignment with
      | Some v when v >= 0 && v < card -> idx := !idx + (v * s.(i))
      | Some _ -> invalid_arg "Mfactor.value: value out of range"
      | None ->
          invalid_arg
            (Printf.sprintf "Mfactor.value: variable %d unassigned" id))
    t.vars;
  t.data.(!idx)

let total t = Array.fold_left ( +. ) 0.0 t.data

let normalize t =
  let z = total t in
  if z <= 0.0 then invalid_arg "Mfactor.normalize: zero total";
  { t with data = Array.map (fun x -> x /. z) t.data }

let equal ?(eps = 1e-12) a b =
  a.vars = b.vars
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= eps) a.data b.data
