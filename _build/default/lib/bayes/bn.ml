type cpd =
  | Table of float array
  | Noisy_or of { rates : float array; leak : float }

type node = { name : string; parents : int array; cpd : cpd }

type t = { mutable nodes : node array; mutable count : int }

let create () = { nodes = [||]; count = 0 }

let check_prob p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Bn: probability %g out of [0,1]" p)

let add t ~name ~parents cpd =
  let id = t.count in
  Array.iter
    (fun p ->
      if p < 0 || p >= id then
        invalid_arg
          (Printf.sprintf "Bn.add: node %s has invalid parent %d" name p))
    parents;
  (match cpd with
  | Table probs ->
      if Array.length probs <> 1 lsl Array.length parents then
        invalid_arg
          (Printf.sprintf "Bn.add: node %s CPT has wrong size" name);
      Array.iter check_prob probs
  | Noisy_or { rates; leak } ->
      if Array.length rates <> Array.length parents then
        invalid_arg
          (Printf.sprintf "Bn.add: node %s noisy-or rate count mismatch" name);
      Array.iter check_prob rates;
      check_prob leak);
  if t.count = Array.length t.nodes then begin
    let bigger =
      Array.make (max 8 (2 * Array.length t.nodes))
        { name = ""; parents = [||]; cpd = Table [| 0.0 |] }
    in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end;
  t.nodes.(t.count) <- { name; parents = Array.copy parents; cpd };
  t.count <- t.count + 1;
  id

let n_nodes t = t.count
let name t i = t.nodes.(i).name
let parents t i = t.nodes.(i).parents

let find t n =
  let rec loop i =
    if i >= t.count then None
    else if String.equal t.nodes.(i).name n then Some i
    else loop (i + 1)
  in
  loop 0

let prob_true t i parent_values =
  let node = t.nodes.(i) in
  if Array.length parent_values <> Array.length node.parents then
    invalid_arg "Bn.prob_true: parent value count mismatch";
  match node.cpd with
  | Table probs ->
      let idx = ref 0 in
      Array.iteri
        (fun k v -> if v then idx := !idx lor (1 lsl k))
        parent_values;
      probs.(!idx)
  | Noisy_or { rates; leak } ->
      let escape = ref (1.0 -. leak) in
      Array.iteri
        (fun k v -> if v then escape := !escape *. (1.0 -. rates.(k)))
        parent_values;
      1.0 -. !escape

let node_factor t i =
  let node = t.nodes.(i) in
  let vars = Array.append [| i |] node.parents in
  (* [of_fun] sorts vars; map sorted positions back to (self, parents) *)
  let sorted = Array.copy vars in
  Array.sort compare sorted;
  let self_pos = ref 0 in
  Array.iteri (fun k v -> if v = i then self_pos := k) sorted;
  let parent_pos =
    Array.map
      (fun p ->
        let pos = ref 0 in
        Array.iteri (fun k v -> if v = p then pos := k) sorted;
        !pos)
      node.parents
  in
  Factor.of_fun ~vars:sorted (fun values ->
      let pv = Array.map (fun pos -> values.(pos)) parent_pos in
      let p = prob_true t i pv in
      if values.(!self_pos) then p else 1.0 -. p)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.count - 1 do
    Format.fprintf ppf "%d: %s <- [%s]@," i t.nodes.(i).name
      (String.concat ", "
         (Array.to_list
            (Array.map (fun p -> t.nodes.(p).name) t.nodes.(i).parents)))
  done;
  Format.fprintf ppf "@]"
