lib/bayes/mfactor.ml: Array List Printf
