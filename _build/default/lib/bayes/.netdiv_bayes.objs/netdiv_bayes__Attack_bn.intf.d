lib/bayes/attack_bn.mli: Bn Dbn Netdiv_core Random
