lib/bayes/bn.mli: Factor Format
