lib/bayes/factor.ml: Array List Printf
