lib/bayes/factor.mli:
