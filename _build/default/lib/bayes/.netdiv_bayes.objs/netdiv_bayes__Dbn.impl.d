lib/bayes/dbn.ml: Array Fun List Mfactor Printf Random String
