lib/bayes/dbn.mli: Mfactor Random
