lib/bayes/mfactor.mli:
