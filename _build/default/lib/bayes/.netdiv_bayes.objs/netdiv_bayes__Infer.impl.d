lib/bayes/infer.ml: Array Bn Factor List Random
