lib/bayes/attack_bn.ml: Array Bn Dbn Fun Infer List Netdiv_core Netdiv_graph Printf Random
