lib/bayes/bn.ml: Array Factor Format Printf String
