lib/bayes/infer.mli: Bn Random
