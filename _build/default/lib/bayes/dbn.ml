type node = {
  name : string;
  card : int;
  parents : int array;
  cpt : float array;
      (* P(node = k | parent config), indexed [config * card + k] with
         parent configs mixed-radix, first parent fastest *)
}

type t = { mutable nodes : node array; mutable count : int }

let create () = { nodes = [||]; count = 0 }

let n_nodes t = t.count
let name t i = t.nodes.(i).name
let card t i = t.nodes.(i).card
let parents t i = t.nodes.(i).parents

let find t n =
  let rec loop i =
    if i >= t.count then None
    else if String.equal t.nodes.(i).name n then Some i
    else loop (i + 1)
  in
  loop 0

let add t ~name ~card:k ~parents cpd =
  let id = t.count in
  if k < 1 then invalid_arg (Printf.sprintf "Dbn.add: %s has card < 1" name);
  Array.iter
    (fun p ->
      if p < 0 || p >= id then
        invalid_arg (Printf.sprintf "Dbn.add: %s has invalid parent" name))
    parents;
  let n_parents = Array.length parents in
  let configs =
    Array.fold_left (fun acc p -> acc * t.nodes.(p).card) 1 parents
  in
  let cpt = Array.make (configs * k) 0.0 in
  let values = Array.make n_parents 0 in
  for config = 0 to configs - 1 do
    let rest = ref config in
    for i = 0 to n_parents - 1 do
      let pc = t.nodes.(parents.(i)).card in
      values.(i) <- !rest mod pc;
      rest := !rest / pc
    done;
    let row_total = ref 0.0 in
    for v = 0 to k - 1 do
      let p = cpd values v in
      if p < -1e-12 then
        invalid_arg (Printf.sprintf "Dbn.add: %s has negative probability" name);
      cpt.((config * k) + v) <- p;
      row_total := !row_total +. p
    done;
    if abs_float (!row_total -. 1.0) > 1e-6 then
      invalid_arg
        (Printf.sprintf "Dbn.add: %s CPD row sums to %g" name !row_total)
  done;
  if t.count = Array.length t.nodes then begin
    let bigger =
      Array.make
        (max 8 (2 * Array.length t.nodes))
        { name = ""; card = 1; parents = [||]; cpt = [| 1.0 |] }
    in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end;
  t.nodes.(t.count) <- { name; card = k; parents = Array.copy parents; cpt };
  t.count <- t.count + 1;
  id

let config_of t node parent_values =
  let n = Array.length node.parents in
  if Array.length parent_values <> n then
    invalid_arg "Dbn.prob: parent value count mismatch";
  let config = ref 0 and stride = ref 1 in
  for i = 0 to n - 1 do
    let pc = t.nodes.(node.parents.(i)).card in
    if parent_values.(i) < 0 || parent_values.(i) >= pc then
      invalid_arg "Dbn.prob: parent value out of range";
    config := !config + (parent_values.(i) * !stride);
    stride := !stride * pc
  done;
  !config

let prob t i parent_values k =
  let node = t.nodes.(i) in
  if k < 0 || k >= node.card then invalid_arg "Dbn.prob: value out of range";
  node.cpt.((config_of t node parent_values * node.card) + k)

let node_factor t i =
  let node = t.nodes.(i) in
  let vars =
    Array.append
      [| (i, node.card) |]
      (Array.map (fun p -> (p, t.nodes.(p).card)) node.parents)
  in
  (* Mfactor sorts; recover positions *)
  let sorted = Array.copy vars in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let pos id =
    let p = ref 0 in
    Array.iteri (fun k (v, _) -> if v = id then p := k) sorted;
    !p
  in
  let self = pos i in
  let parent_pos = Array.map pos node.parents in
  Mfactor.of_fun ~vars:sorted (fun values ->
      let pv = Array.map (fun p -> values.(p)) parent_pos in
      prob t i pv values.(self))

let marginal ?(evidence = []) t query =
  let factors = ref [] in
  for i = 0 to t.count - 1 do
    let f = ref (node_factor t i) in
    List.iter (fun (v, value) -> f := Mfactor.restrict !f v value) evidence;
    factors := !f :: !factors
  done;
  let keep = query :: List.map fst evidence in
  let remaining = ref [] in
  for i = t.count - 1 downto 0 do
    if not (List.mem i keep) then remaining := i :: !remaining
  done;
  let induced_size v =
    let vars =
      List.fold_left
        (fun acc f ->
          if Array.exists (fun (x, _) -> x = v) (Mfactor.vars f) then
            Array.fold_left (fun a (x, c) -> (x, c) :: a) acc (Mfactor.vars f)
          else acc)
        [] !factors
    in
    List.fold_left
      (fun acc (_, c) -> acc * c)
      1
      (List.sort_uniq compare vars)
  in
  let eliminate v =
    let touching, rest =
      List.partition
        (fun f -> Array.exists (fun (x, _) -> x = v) (Mfactor.vars f))
        !factors
    in
    match touching with
    | [] -> ()
    | f :: fs ->
        let joined = List.fold_left Mfactor.product f fs in
        factors := Mfactor.sum_out joined v :: rest
  in
  while !remaining <> [] do
    let v, _ =
      List.fold_left
        (fun (bv, bs) v ->
          let s = induced_size v in
          if s < bs then (v, s) else (bv, bs))
        (-1, max_int) !remaining
    in
    eliminate v;
    remaining := List.filter (fun x -> x <> v) !remaining
  done;
  let joined =
    match !factors with
    | [] -> Mfactor.constant 1.0
    | f :: fs -> List.fold_left Mfactor.product f fs
  in
  let k = card t query in
  let dist =
    Array.init k (fun v -> Mfactor.value joined [ (query, v) ])
  in
  let z = Array.fold_left ( +. ) 0.0 dist in
  if z <= 0.0 then invalid_arg "Dbn.marginal: evidence has probability zero";
  Array.map (fun x -> x /. z) dist

let brute_marginal ?(evidence = []) t query =
  let joint_size =
    Array.fold_left
      (fun acc i -> acc * card t i)
      1
      (Array.init t.count Fun.id)
  in
  if joint_size > 1 lsl 22 then
    invalid_arg "Dbn.brute_marginal: joint too large";
  let values = Array.make t.count 0 in
  let dist = Array.make (card t query) 0.0 in
  let z = ref 0.0 in
  let rec enumerate i =
    if i = t.count then begin
      if List.for_all (fun (v, x) -> values.(v) = x) evidence then begin
        let p = ref 1.0 in
        for j = 0 to t.count - 1 do
          let pv =
            Array.map (fun q -> values.(q)) t.nodes.(j).parents
          in
          p := !p *. prob t j pv values.(j)
        done;
        z := !z +. !p;
        dist.(values.(query)) <- dist.(values.(query)) +. !p
      end
    end
    else
      for v = 0 to card t i - 1 do
        values.(i) <- v;
        enumerate (i + 1)
      done
  in
  enumerate 0;
  if !z <= 0.0 then
    invalid_arg "Dbn.brute_marginal: evidence has probability zero";
  Array.map (fun x -> x /. !z) dist

let sample ~rng t =
  let values = Array.make t.count 0 in
  for i = 0 to t.count - 1 do
    let pv = Array.map (fun q -> values.(q)) t.nodes.(i).parents in
    let u = Random.State.float rng 1.0 in
    let rec pick k acc =
      if k >= card t i - 1 then k
      else
        let acc = acc +. prob t i pv k in
        if u < acc then k else pick (k + 1) acc
    in
    values.(i) <- pick 0 0.0
  done;
  values
