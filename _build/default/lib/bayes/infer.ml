(* Variable elimination with a greedy min-degree ordering. *)
let exact_marginal ?(evidence = []) bn query =
  let n = Bn.n_nodes bn in
  let factors = ref [] in
  for i = 0 to n - 1 do
    let f = ref (Bn.node_factor bn i) in
    List.iter (fun (v, value) -> f := Factor.restrict !f v value) evidence;
    factors := !f :: !factors
  done;
  let keep = query :: List.map fst evidence in
  (* eliminate every non-query, non-evidence variable, smallest induced
     factor first *)
  let remaining = ref [] in
  for i = n - 1 downto 0 do
    if not (List.mem i keep) then remaining := i :: !remaining
  done;
  let eliminate v =
    let touching, rest =
      List.partition
        (fun f -> Array.exists (fun x -> x = v) (Factor.vars f))
        !factors
    in
    match touching with
    | [] -> ()
    | f :: fs ->
        let joined = List.fold_left Factor.product f fs in
        factors := Factor.sum_out joined v :: rest
  in
  let induced_size v =
    let vars =
      List.fold_left
        (fun acc f ->
          if Array.exists (fun x -> x = v) (Factor.vars f) then
            Array.fold_left (fun a x -> x :: a) acc (Factor.vars f)
          else acc)
        [] !factors
    in
    List.length (List.sort_uniq compare vars)
  in
  while !remaining <> [] do
    let best =
      List.fold_left
        (fun (bv, bs) v ->
          let s = induced_size v in
          if s < bs then (v, s) else (bv, bs))
        (-1, max_int) !remaining
    in
    let v = fst best in
    eliminate v;
    remaining := List.filter (fun x -> x <> v) !remaining
  done;
  let joined =
    match !factors with
    | [] -> Factor.constant 1.0
    | f :: fs -> List.fold_left Factor.product f fs
  in
  let p_true = Factor.value joined [ (query, true) ] in
  let p_false = Factor.value joined [ (query, false) ] in
  let z = p_true +. p_false in
  if z <= 0.0 then
    invalid_arg "Infer.exact_marginal: evidence has probability zero";
  p_true /. z

let joint_brute_force ?(evidence = []) bn query =
  let n = Bn.n_nodes bn in
  if n > 20 then invalid_arg "Infer.joint_brute_force: too many nodes";
  let values = Array.make n false in
  let p_query = ref 0.0 and p_evidence = ref 0.0 in
  for idx = 0 to (1 lsl n) - 1 do
    for i = 0 to n - 1 do
      values.(i) <- idx land (1 lsl i) <> 0
    done;
    if List.for_all (fun (v, b) -> values.(v) = b) evidence then begin
      let p = ref 1.0 in
      for i = 0 to n - 1 do
        let pv = Array.map (fun q -> values.(q)) (Bn.parents bn i) in
        let pt = Bn.prob_true bn i pv in
        p := !p *. (if values.(i) then pt else 1.0 -. pt)
      done;
      p_evidence := !p_evidence +. !p;
      if values.(query) then p_query := !p_query +. !p
    end
  done;
  if !p_evidence <= 0.0 then
    invalid_arg "Infer.joint_brute_force: evidence has probability zero";
  !p_query /. !p_evidence

let forward_sample ~rng bn =
  let n = Bn.n_nodes bn in
  let values = Array.make n false in
  for i = 0 to n - 1 do
    let pv = Array.map (fun q -> values.(q)) (Bn.parents bn i) in
    values.(i) <- Random.State.float rng 1.0 < Bn.prob_true bn i pv
  done;
  values

let estimate_marginal ~rng ~samples ?(evidence = []) bn query =
  let n = Bn.n_nodes bn in
  let fixed = Array.make n None in
  List.iter (fun (v, b) -> fixed.(v) <- Some b) evidence;
  let values = Array.make n false in
  let weight_sum = ref 0.0 and hit_sum = ref 0.0 in
  for _ = 1 to samples do
    let w = ref 1.0 in
    for i = 0 to n - 1 do
      let pv = Array.map (fun q -> values.(q)) (Bn.parents bn i) in
      let pt = Bn.prob_true bn i pv in
      match fixed.(i) with
      | Some b ->
          values.(i) <- b;
          w := !w *. (if b then pt else 1.0 -. pt)
      | None -> values.(i) <- Random.State.float rng 1.0 < pt
    done;
    weight_sum := !weight_sum +. !w;
    if values.(query) then hit_sum := !hit_sum +. !w
  done;
  if !weight_sum <= 0.0 then 0.0 else !hit_sum /. !weight_sum
