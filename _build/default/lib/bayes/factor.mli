(** Factors over boolean variables, the workhorse of exact BN inference.

    A factor maps assignments of a sorted variable set to non-negative
    reals, stored as a dense table of size [2^k]: the bit of [vars.(i)] in
    the table index is bit [i] (so [vars.(0)] is the least significant). *)

type t

val vars : t -> int array
(** Sorted variable ids (do not mutate). *)

val data : t -> float array
(** The table (do not mutate). *)

val of_fun : vars:int array -> (bool array -> float) -> t
(** [of_fun ~vars f] tabulates [f], which receives values aligned with the
    sorted [vars].
    @raise Invalid_argument on duplicate variables or more than 25 of
    them. *)

val constant : float -> t
(** Variable-free factor. *)

val product : t -> t -> t
(** Pointwise product over the union of the variable sets. *)

val sum_out : t -> int -> t
(** Marginalizes one variable away (no-op if absent). *)

val restrict : t -> int -> bool -> t
(** Conditions on a variable's value, dropping it (no-op if absent). *)

val value : t -> (int * bool) list -> float
(** Looks up the entry for a full assignment of the factor's variables.
    @raise Invalid_argument if a variable is missing. *)

val total : t -> float
(** Sum of all entries. *)

val equal : ?eps:float -> t -> t -> bool
