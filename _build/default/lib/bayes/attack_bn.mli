(** Attack Bayesian networks and the diversity metric [d_bn] (Section VI).

    Given a diversified network and an attacker entry host, the undirected
    host graph is oriented into a BFS DAG rooted at the entry; each host
    becomes a boolean "compromised" node whose parents are its predecessor
    hosts, combined by a noisy-OR of per-edge infection rates.

    The per-edge rate models the attacker's choice among the zero-day
    exploits feasible on that edge — one per service the two hosts share:
    exploiting service [s] succeeds with the vulnerability similarity of
    the products assigned at the two ends (1.0 when they run the very same
    product).  The paper's metric assumes the attacker "evenly chooses one"
    ({!Uniform_choice}); a reconnaissance attacker takes the best
    ({!Best_choice}); the similarity-free reference uses a flat average
    zero-day rate ({!Fixed}). *)

type exploit_model =
  | Uniform_choice  (** mean similarity over the shared services *)
  | Best_choice     (** max similarity over the shared services *)
  | Fixed of float  (** flat per-edge rate [P_avg], ignoring products *)

val default_base_rate : float
(** One-shot success probability of a zero-day exploit against the very
    product it targets (0.30; calibration in EXPERIMENTS.md). *)

val default_sim_floor : float
(** Residual similarity assumed when the measured Jaccard similarity is
    (near) zero — an unknown zero-day may still affect both products
    (0.05). *)

val edge_rate :
  ?base_rate:float ->
  ?sim_floor:float ->
  Netdiv_core.Assignment.t ->
  model:exploit_model ->
  int ->
  int ->
  float
(** Infection rate from one host to a connected neighbour: [base_rate *
    choice(max(sim, sim_floor))] for the similarity models, the flat rate
    itself for [Fixed]. *)

val build :
  ?base_rate:float ->
  ?sim_floor:float ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  ?prior:float ->
  model:exploit_model ->
  unit ->
  Bn.t * int array
(** [build a ~entry ~model ()] constructs the attack BN and the host→node
    id map (hosts unreachable from [entry] map to [-1]).  [prior] is the
    entry host's compromise probability (default 1.0). *)

val build_explicit :
  ?base_rate:float ->
  ?sim_floor:float ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  ?prior:float ->
  model:exploit_model ->
  unit ->
  Dbn.t * int array
(** The explicit Section-VI construction: per directed attack edge a
    multi-valued attacker-choice node (one state per exploitable shared
    service, plus "silent"), per host a boolean compromise node whose CPT
    combines the chosen exploits' success rates.  Marginally equivalent
    to {!build} (verified in the test suite); exponentially bigger, so
    use it as the executable specification, not the production path. *)

val p_compromise_explicit :
  ?base_rate:float ->
  ?sim_floor:float ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  model:exploit_model ->
  float
(** Target compromise probability through {!build_explicit} and exact
    multi-valued variable elimination. *)

val p_compromise :
  ?base_rate:float ->
  ?sim_floor:float ->
  ?samples:int ->
  ?rng:Random.State.t ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  model:exploit_model ->
  float
(** Probability of the target host being compromised.  Uses exact variable
    elimination when feasible, otherwise falls back to forward sampling
    with [samples] draws (default 200,000).  Returns 0 when the target is
    unreachable from the entry. *)

val host_marginals :
  ?base_rate:float ->
  ?sim_floor:float ->
  ?samples:int ->
  ?rng:Random.State.t ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  model:exploit_model ->
  (int * float) array
(** Estimated compromise probability of {e every} host (by forward
    sampling of the attack BN; default 50,000 draws) — the risk ranking a
    defender uses to decide which hosts to upgrade first.  Hosts
    unreachable from the entry score 0. *)

val default_p_avg : float
(** The average zero-day propagation rate used for the similarity-free
    reference P′ (0.065; calibration in EXPERIMENTS.md). *)

val diversity :
  ?base_rate:float ->
  ?sim_floor:float ->
  ?samples:int ->
  ?rng:Random.State.t ->
  ?p_avg:float ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  float
(** The network diversity metric of Definition 6,
    [d_bn = P'(target) / P(target)], where [P'] uses [Fixed p_avg]
    (default {!default_p_avg}) and [P] uses {!Uniform_choice}.  Larger is
    more diverse; at most 1 when the assignment is no better than the
    flat-rate reference. *)
