(** Bayesian networks over boolean variables.

    Nodes are added in topological order (parents must already exist), so a
    network is acyclic by construction.  Two conditional distributions
    cover everything the attack models need:

    - {!constructor-Table}: explicit [P(node = true)] per parent
      configuration;
    - {!constructor-Noisy_or}: independent causes — parent [i], when true,
      activates the node with probability [rates.(i)]; a [leak] fires
      unconditionally.  This is the standard model of independent
      compromise attempts along incoming attack edges. *)

type cpd =
  | Table of float array
      (** [P(true)] per parent configuration; index bit [i] is parent [i]
          (first parent least significant); length [2^(#parents)] *)
  | Noisy_or of { rates : float array; leak : float }

type t

val create : unit -> t

val add : t -> name:string -> parents:int array -> cpd -> int
(** Appends a node and returns its id.  Parents must be existing node ids;
    probabilities must lie in [0,1].
    @raise Invalid_argument otherwise. *)

val n_nodes : t -> int
val name : t -> int -> string
val parents : t -> int -> int array
val find : t -> string -> int option

val prob_true : t -> int -> bool array -> float
(** [prob_true bn node parent_values]: CPD evaluation; [parent_values]
    aligns with [parents bn node]. *)

val node_factor : t -> int -> Factor.t
(** The CPT of a node as a factor over the node and its parents. *)

val pp : Format.formatter -> t -> unit
