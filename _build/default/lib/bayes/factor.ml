type t = { vars : int array; data : float array }

let vars t = t.vars
let data t = t.data

let check_vars vars =
  let n = Array.length vars in
  if n > 25 then invalid_arg "Factor: too many variables";
  let sorted = Array.copy vars in
  Array.sort compare sorted;
  for i = 1 to n - 1 do
    if sorted.(i) = sorted.(i - 1) then
      invalid_arg "Factor: duplicate variable"
  done;
  sorted

let of_fun ~vars f =
  let vars = check_vars vars in
  let n = Array.length vars in
  let values = Array.make n false in
  let data =
    Array.init (1 lsl n) (fun idx ->
        for i = 0 to n - 1 do
          values.(i) <- idx land (1 lsl i) <> 0
        done;
        f values)
  in
  { vars; data }

let constant c = { vars = [||]; data = [| c |] }

(* position of [v] in the sorted variable array, or -1 *)
let position t v =
  let rec search lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if t.vars.(mid) = v then mid
      else if t.vars.(mid) < v then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length t.vars)

let product a b =
  let union =
    Array.to_list a.vars @ Array.to_list b.vars
    |> List.sort_uniq compare |> Array.of_list
  in
  let n = Array.length union in
  if n > 25 then invalid_arg "Factor.product: too many variables";
  (* for each union variable, its bit position in a and b (or -1) *)
  let pos_a = Array.map (position a) union in
  let pos_b = Array.map (position b) union in
  let data =
    Array.init (1 lsl n) (fun idx ->
        let ia = ref 0 and ib = ref 0 in
        for i = 0 to n - 1 do
          if idx land (1 lsl i) <> 0 then begin
            if pos_a.(i) >= 0 then ia := !ia lor (1 lsl pos_a.(i));
            if pos_b.(i) >= 0 then ib := !ib lor (1 lsl pos_b.(i))
          end
        done;
        a.data.(!ia) *. b.data.(!ib))
  in
  { vars = union; data }

let sum_out t v =
  let p = position t v in
  if p < 0 then t
  else begin
    let n = Array.length t.vars in
    let vars' = Array.make (n - 1) 0 in
    Array.iteri
      (fun i x -> if i < p then vars'.(i) <- x else if i > p then vars'.(i - 1) <- x)
      t.vars;
    let low_mask = (1 lsl p) - 1 in
    let data' =
      Array.init (1 lsl (n - 1)) (fun idx ->
          let base =
            (idx land low_mask) lor ((idx land lnot low_mask) lsl 1)
          in
          t.data.(base) +. t.data.(base lor (1 lsl p)))
    in
    { vars = vars'; data = data' }
  end

let restrict t v value =
  let p = position t v in
  if p < 0 then t
  else begin
    let n = Array.length t.vars in
    let vars' = Array.make (n - 1) 0 in
    Array.iteri
      (fun i x -> if i < p then vars'.(i) <- x else if i > p then vars'.(i - 1) <- x)
      t.vars;
    let low_mask = (1 lsl p) - 1 in
    let bit = if value then 1 lsl p else 0 in
    let data' =
      Array.init (1 lsl (n - 1)) (fun idx ->
          let base =
            (idx land low_mask) lor ((idx land lnot low_mask) lsl 1)
          in
          t.data.(base lor bit))
    in
    { vars = vars'; data = data' }
  end

let value t assignment =
  let idx = ref 0 in
  Array.iteri
    (fun i v ->
      match List.assoc_opt v assignment with
      | Some true -> idx := !idx lor (1 lsl i)
      | Some false -> ()
      | None ->
          invalid_arg
            (Printf.sprintf "Factor.value: variable %d unassigned" v))
    t.vars;
  t.data.(!idx)

let total t = Array.fold_left ( +. ) 0.0 t.data

let equal ?(eps = 1e-12) a b =
  a.vars = b.vars
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= eps) a.data b.data
