(** Inference over boolean Bayesian networks.

    Exact marginals via variable elimination with a min-degree ordering,
    plus Monte-Carlo estimators (forward sampling, likelihood weighting)
    for networks whose treewidth defeats exact elimination. *)

val exact_marginal : ?evidence:(int * bool) list -> Bn.t -> int -> float
(** [exact_marginal bn node] = P(node = true | evidence) by variable
    elimination.
    @raise Invalid_argument if the evidence has probability zero or an
    intermediate factor would exceed 25 variables. *)

val joint_brute_force : ?evidence:(int * bool) list -> Bn.t -> int -> float
(** Same query by full joint enumeration — O(2^n), for testing only.
    @raise Invalid_argument beyond 20 nodes. *)

val forward_sample : rng:Random.State.t -> Bn.t -> bool array
(** One ancestral sample of all nodes. *)

val estimate_marginal :
  rng:Random.State.t ->
  samples:int ->
  ?evidence:(int * bool) list ->
  Bn.t ->
  int ->
  float
(** Likelihood-weighted estimate of P(node = true | evidence). *)
