(** Bayesian networks over multi-valued discrete variables.

    The multi-valued counterpart of {!Bn}, needed for the explicit attack
    BN of Section VI whose attacker-choice nodes have one state per
    exploitable product plus "silent".  Nodes are added in topological
    order; CPDs are given as functions and tabulated on the spot. *)

type t

val create : unit -> t

val add :
  t ->
  name:string ->
  card:int ->
  parents:int array ->
  (int array -> int -> float) ->
  int
(** [add t ~name ~card ~parents cpd] appends a node with [card] states;
    [cpd parent_values k] is P(node = k | parents), checked to be
    non-negative and to sum to 1 (±1e-6) over [k] for every parent
    configuration.
    @raise Invalid_argument on violations, bad parents, or [card < 1]. *)

val n_nodes : t -> int
val name : t -> int -> string
val card : t -> int -> int
val parents : t -> int -> int array
val find : t -> string -> int option

val prob : t -> int -> int array -> int -> float
(** [prob t node parent_values k] = P(node = k | parents). *)

val node_factor : t -> int -> Mfactor.t
(** CPT as a factor over the node and its parents. *)

val marginal : ?evidence:(int * int) list -> t -> int -> float array
(** Exact marginal distribution of a node by variable elimination with a
    min-size ordering.
    @raise Invalid_argument if the evidence has probability zero or an
    intermediate factor overflows. *)

val brute_marginal : ?evidence:(int * int) list -> t -> int -> float array
(** The same by full joint enumeration (testing only).
    @raise Invalid_argument when the joint exceeds 2^22 entries. *)

val sample : rng:Random.State.t -> t -> int array
(** One ancestral sample. *)
