(** Factors over multi-valued discrete variables.

    Generalizes {!Factor} (boolean) to arbitrary finite cardinalities,
    which the explicit attack BN of Section VI needs: its attacker-choice
    nodes range over "which product to exploit, or stay silent".
    Assignments are indexed mixed-radix: the first (lowest-id) variable
    varies fastest. *)

type t

val vars : t -> (int * int) array
(** (variable id, cardinality) pairs, sorted by id; do not mutate. *)

val data : t -> float array
(** The dense table; do not mutate. *)

val of_fun : vars:(int * int) array -> (int array -> float) -> t
(** [of_fun ~vars f] tabulates [f], which receives one value per sorted
    variable.
    @raise Invalid_argument on duplicate ids, cardinality < 1, or a
    table above 2^24 entries. *)

val constant : float -> t

val product : t -> t -> t
(** Pointwise product over the union of the variable sets.
    @raise Invalid_argument when a shared variable disagrees on
    cardinality or the result would exceed 2^24 entries. *)

val sum_out : t -> int -> t
(** Marginalizes one variable (no-op if absent). *)

val restrict : t -> int -> int -> t
(** Conditions on [var = value], dropping the variable.
    @raise Invalid_argument if the value is out of range. *)

val value : t -> (int * int) list -> float
(** Entry for a full assignment of the factor's variables. *)

val total : t -> float
val normalize : t -> t
(** Scales entries to sum to 1. @raise Invalid_argument on zero total. *)

val equal : ?eps:float -> t -> t -> bool
