(** Agent-based malware propagation (the paper's NetLogo substitute).

    Discrete-tick simulation of a Stuxnet-like worm (Section VII-C2): the
    entry host starts compromised; every tick, each infected host attacks
    each of its susceptible neighbours once.  The attacker picks a zero-day
    exploit among the services the two hosts share — the paper's
    "sophisticated attacker" performs reconnaissance and always picks the
    exploit with the highest success rate — and the attempt succeeds with
    probability equal to the vulnerability similarity of the two assigned
    products (1.0 for identical products).

    All randomness comes from the caller's [Random.State.t], so runs are
    reproducible. *)

type strategy =
  | Best_exploit     (** reconnaissance attacker: max-similarity service *)
  | Uniform_exploit  (** picks a shared service uniformly each attempt *)
  | Arsenal_exploit
      (** a static worm: it carries one zero-day per service, forged for
          the {e entry} host's products (the paper's "three unique
          zero-day exploits"), and cannot adapt en route — each hop
          succeeds with the similarity between the arsenal's product and
          the victim's.  The weakest of the attacker-capability levels. *)

val default_attempt_scale : float
(** Per-tick success probability of an exploit against the very product it
    targets (0.15) — the NetLogo infection-rate calibration, see
    EXPERIMENTS.md. *)

val default_sim_floor : float
(** Residual similarity for measured-zero product pairs (0.05), as in
    {!Netdiv_bayes.Attack_bn}. *)

type mttc_stats = {
  runs : int;            (** simulations performed *)
  successes : int;       (** runs in which the target was compromised *)
  mean_ticks : float;    (** mean compromise time over successful runs *)
  max_ticks : int;       (** per-run tick cap *)
}

val run :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  int option
(** One simulation; [Some t] if the target fell at tick [t] (the entry
    itself gives [Some 0]), [None] if it survived [max_ticks] (default
    10,000) ticks. *)

val mttc :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  runs:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  mttc_stats
(** Mean-time-to-compromise over repeated runs (the paper uses 1,000). *)

val mttc_samples :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  runs:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  int array
(** Raw compromise times of the successful runs, in run order. *)

val mttc_summary :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  runs:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  mttc_stats * Stat.summary option
(** {!mttc} plus a full distribution summary ([None] when no run reached
    the target). *)

val mttc_parallel :
  ?domains:int ->
  seed:int ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  runs:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  unit ->
  mttc_stats
(** Multicore {!mttc}: runs are distributed over [domains] (default 4)
    OCaml domains; each run seeds its own generator from [(seed, index)],
    so the result is identical for every domain count. *)

val epidemic_curve :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  int array
(** Number of infected hosts after each tick of a single run, until the
    infection stops spreading or the cap is reached.  Index 0 is the state
    after tick 1. *)

(** {1 Detection and response}

    Diversity buys {e time}; a defender converts that time into containment.
    The defended simulation adds a per-tick detection probability: detected
    hosts are reimaged (and optionally immunized), and the worm dies out if
    it ever loses every foothold. *)

type defense = {
  detect_rate : float;  (** per-tick detection probability per infected host *)
  immunize : bool;      (** reimaged hosts cannot be reinfected *)
}

val run_defended :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  defense:defense ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  int option
(** One defended run: [Some t] when the target fell at tick [t], [None]
    when the worm was contained (or timed out).
    @raise Invalid_argument when [detect_rate] is outside [0,1]. *)

val mttc_defended :
  rng:Random.State.t ->
  ?strategy:strategy ->
  ?attempt_scale:float ->
  ?sim_floor:float ->
  ?max_ticks:int ->
  defense:defense ->
  runs:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  mttc_stats
(** Repeated defended runs; [successes/runs] is the probability the
    target is compromised despite the defender. *)

val pp_mttc : Format.formatter -> mttc_stats -> unit
