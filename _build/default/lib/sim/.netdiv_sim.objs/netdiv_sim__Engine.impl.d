lib/sim/engine.ml: Array Domain Format Fun List Netdiv_core Netdiv_graph Random Stat
