lib/sim/engine.mli: Format Netdiv_core Random Stat
