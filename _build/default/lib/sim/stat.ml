type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  ci95 : float * float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

(* Welford's online algorithm *)
let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = ref 0.0 and m2 = ref 0.0 and count = ref 0 in
    Array.iter
      (fun x ->
        incr count;
        let delta = x -. !m in
        m := !m +. (delta /. float_of_int !count);
        m2 := !m2 +. (delta *. (x -. !m)))
      xs;
    !m2 /. float_of_int (n - 1)
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stat.percentile: empty sample";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stat.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let position = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor position) in
  let hi = int_of_float (Float.ceil position) in
  if lo = hi then sorted.(lo)
  else
    let frac = position -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stat.summarize: empty sample";
  let m = mean xs in
  let sd = sqrt (variance xs) in
  let half_width = 1.96 *. sd /. sqrt (float_of_int n) in
  {
    n;
    mean = m;
    stddev = sd;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
    median = percentile xs 0.5;
    p90 = percentile xs 0.9;
    ci95 = (m -. half_width, m +. half_width);
  }

let of_ints = Array.map float_of_int

let pp_summary ppf s =
  let lo, hi = s.ci95 in
  Format.fprintf ppf
    "n=%d mean=%.2f (95%% CI %.2f-%.2f) sd=%.2f median=%.2f p90=%.2f \
     range=[%.0f, %.0f]"
    s.n s.mean lo hi s.stddev s.median s.p90 s.min s.max
