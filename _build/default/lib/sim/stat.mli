(** Small descriptive-statistics toolkit for simulation outputs.

    MTTC distributions are skewed, so the mean of Table VI hides a lot;
    this module summarizes sample arrays with robust quantiles and a
    normal-approximation confidence interval for the mean. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;         (** sample standard deviation (n-1) *)
  min : float;
  max : float;
  median : float;
  p90 : float;            (** 90th percentile *)
  ci95 : float * float;   (** 95% CI for the mean (normal approximation) *)
}

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator; 0 for fewer than two samples),
    computed with Welford's online algorithm for numerical stability. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,1], by linear interpolation between
    order statistics.
    @raise Invalid_argument on an empty array or [p] outside [0,1]. *)

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val of_ints : int array -> float array

val pp_summary : Format.formatter -> summary -> unit
