type spec = {
  label : string;
  products : (string * Cpe.t) array;
  totals : int array;
  shared : (int * int * int) list;
}

let os = Cpe.make ~part:Cpe.Operating_system
let app = Cpe.make ~part:Cpe.Application

(* Table II, CVEs 1999-2016.  Indices follow the paper's row order. *)
let os_spec =
  {
    label = "os";
    products =
      [|
        ("WinXP2", os ~vendor:"microsoft" ~version:"sp2" "windows_xp");
        ("Win7", os ~vendor:"microsoft" "windows_7");
        ("Win8.1", os ~vendor:"microsoft" "windows_8.1");
        ("Win10", os ~vendor:"microsoft" "windows_10");
        ("Ubt14.04", os ~vendor:"canonical" ~version:"14.04" "ubuntu_linux");
        ("Deb8.0", os ~vendor:"debian" ~version:"8.0" "debian_linux");
        ("Mac10.5", os ~vendor:"apple" ~version:"10.5" "mac_os_x");
        ("Suse13.2", os ~vendor:"novell" ~version:"13.2" "opensuse");
        ("Fedora", os ~vendor:"redhat" "fedora");
      |];
    totals = [| 479; 1028; 572; 453; 612; 519; 424; 492; 367 |];
    shared =
      [
        (1, 0, 328);
        (2, 0, 10);
        (2, 1, 298);
        (3, 1, 164);
        (3, 2, 421);
        (5, 4, 195);
        (6, 1, 109);
        (7, 4, 161);
        (7, 5, 102);
        (8, 4, 75);
        (8, 5, 41);
        (8, 6, 1);
        (8, 7, 89);
      ];
  }

(* Table III.  Two cells of the paper's table are printing errors: the
   Opera/SeaMonkey entry repeats SeaMonkey's total (we curate 4 shared CVEs,
   in line with Opera's other overlaps), and SeaMonkey's diagonal total of
   492 is impossible given the printed 683-CVE overlap with Firefox.
   Back-solving from the printed similarity 0.450 = 683 / (1502 + x - 683)
   gives x = 699, which we use. *)
let browser_spec =
  {
    label = "browser";
    products =
      [|
        ("IE8", app ~vendor:"microsoft" ~version:"8" "internet_explorer");
        ("IE10", app ~vendor:"microsoft" ~version:"10" "internet_explorer");
        ("Edge", app ~vendor:"microsoft" "edge");
        ("Chrome", app ~vendor:"google" "chrome");
        ("Firefox", app ~vendor:"mozilla" "firefox");
        ("Safari", app ~vendor:"apple" "safari");
        ("SeaMonkey", app ~vendor:"mozilla" "seamonkey");
        ("Opera", app ~vendor:"opera" "opera_browser");
      |];
    totals = [| 349; 513; 194; 1661; 1502; 766; 699; 225 |];
    shared =
      [
        (1, 0, 240);
        (2, 0, 7);
        (2, 1, 73);
        (3, 2, 2);
        (4, 2, 2);
        (4, 3, 15);
        (5, 2, 2);
        (5, 3, 21);
        (5, 4, 6);
        (6, 3, 3);
        (6, 4, 683);
        (6, 5, 1);
        (7, 2, 1);
        (7, 3, 6);
        (7, 4, 7);
        (7, 5, 4);
        (7, 6, 4);
      ];
  }

(* Database servers of the case study's Table IV.  The paper computes these
   "in the same way" from NVD but does not print the table; counts curated
   here: MariaDB forked from MySQL 5.5 and the projects share many CVEs,
   while cross-vendor pairs share none. *)
let database_spec =
  {
    label = "database";
    products =
      [|
        ("MSSQL08", app ~vendor:"microsoft" ~version:"2008" "sql_server");
        ("MSSQL14", app ~vendor:"microsoft" ~version:"2014" "sql_server");
        ("MySQL5.5", app ~vendor:"oracle" ~version:"5.5" "mysql");
        ("MariaDB10", app ~vendor:"mariadb" ~version:"10" "mariadb");
      |];
    totals = [| 46; 30; 171; 108 |];
    shared = [ (1, 0, 8); (3, 2, 44) ];
  }

let all_specs = [ os_spec; browser_spec; database_spec ]

let find_spec label =
  List.find_opt (fun s -> String.equal s.label label) all_specs

let table spec =
  Similarity.of_counts
    ~products:(Array.map fst spec.products)
    ~totals:spec.totals ~shared:spec.shared

(* --- Synthetic corpus generation --------------------------------------- *)

(* Pairwise intersection targets alone can be unrealizable: in Table II,
   Windows 8.1's overlaps with 7 and 10 sum past its own total, so some CVEs
   must affect all three at once.  We therefore emit CVEs affecting *groups*
   of products, greedily: repeatedly take the pair with the largest remaining
   deficit, extend the group with products that still owe overlap to every
   member, and emit as many identical-group CVEs as deficits and remaining
   capacities allow. *)

let synthesize spec =
  let n = Array.length spec.products in
  let deficit = Array.make (n * n) 0 in
  List.iter
    (fun (i, j, c) ->
      deficit.((i * n) + j) <- c;
      deficit.((j * n) + i) <- c)
    spec.shared;
  let capacity = Array.copy spec.totals in
  let db = Nvd.create () in
  let counter = ref 0 in
  let emit group count =
    let affected = List.map (fun i -> snd spec.products.(i)) group in
    for _ = 1 to count do
      incr counter;
      let year = 1999 + (!counter mod 18) in
      let id = Printf.sprintf "CVE-%d-%d" year (10000 + !counter) in
      let summary = Printf.sprintf "synthetic %s vulnerability" spec.label in
      (* deterministic severity in [1.0, 9.9] so severity-weighted
         similarity (Weighted) has data to chew on *)
      let cvss = 1.0 +. (float_of_int (Hashtbl.hash id mod 90) /. 10.0) in
      Nvd.add db (Cve.make_exn ~cvss ~summary ~id affected)
    done
  in
  let max_pair () =
    let best = ref None in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let d = deficit.((i * n) + j) in
        if d > 0 then
          match !best with
          | Some (_, _, d') when d' >= d -> ()
          | _ -> best := Some (i, j, d)
      done
    done;
    !best
  in
  (* Smallest remaining deficit between k and every group member; 0 when k
     cannot join. *)
  let joint_deficit group k =
    if List.mem k group then 0
    else
      List.fold_left
        (fun acc m -> min acc deficit.((m * n) + k))
        max_int group
  in
  let rec extend group =
    let best = ref (0, -1) in
    for k = 0 to n - 1 do
      let d = joint_deficit group k in
      if d > fst !best && capacity.(k) > 0 then best := (d, k)
    done;
    match !best with
    | 0, _ -> group
    | _, k -> extend (k :: group)
  in
  let rec loop () =
    match max_pair () with
    | None -> ()
    | Some (i, j, _) ->
        let group = extend [ i; j ] in
        let pair_min =
          let rec pairs = function
            | [] -> max_int
            | x :: rest ->
                List.fold_left
                  (fun acc y -> min acc deficit.((x * n) + y))
                  (pairs rest) rest
          in
          pairs group
        in
        let cap_min =
          List.fold_left (fun acc k -> min acc capacity.(k)) max_int group
        in
        let count = min pair_min cap_min in
        if count <= 0 then
          failwith
            (Printf.sprintf
               "Corpus.synthesize: spec %S unrealizable (stuck on pair %s/%s)"
               spec.label
               (fst spec.products.(i))
               (fst spec.products.(j)));
        emit group count;
        List.iter
          (fun x ->
            capacity.(x) <- capacity.(x) - count;
            List.iter
              (fun y ->
                if x <> y then
                  deficit.((x * n) + y) <- deficit.((x * n) + y) - count)
              group)
          group;
        loop ()
  in
  loop ();
  (* Fill each product up to its total with singleton CVEs. *)
  Array.iteri (fun i cap -> if cap > 0 then emit [ i ] cap) capacity;
  db
