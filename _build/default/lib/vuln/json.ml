type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

(* encode a Unicode code point as UTF-8 into the buffer *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st.pos (Printf.sprintf "expected %C, found %C" c x)
  | None -> fail st.pos (Printf.sprintf "expected %C, found end of input" c)

let expect_keyword st keyword value =
  let n = String.length keyword in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = keyword
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" keyword)

let hex_digit pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "bad hex digit in \\u escape"

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
  let v =
    (hex_digit st.pos st.src.[st.pos] lsl 12)
    lor (hex_digit st.pos st.src.[st.pos + 1] lsl 8)
    lor (hex_digit st.pos st.src.[st.pos + 2] lsl 4)
    lor hex_digit st.pos st.src.[st.pos + 3]
  in
  st.pos <- st.pos + 4;
  v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st.pos "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                let hi = parse_hex4 st in
                if hi >= 0xD800 && hi <= 0xDBFF then begin
                  (* expect a low surrogate *)
                  if
                    st.pos + 2 <= String.length st.src
                    && st.src.[st.pos] = '\\'
                    && st.src.[st.pos + 1] = 'u'
                  then begin
                    st.pos <- st.pos + 2;
                    let lo = parse_hex4 st in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail st.pos "invalid low surrogate";
                    add_utf8 buf
                      (0x10000
                      + ((hi - 0xD800) lsl 10)
                      + (lo - 0xDC00))
                  end
                  else fail st.pos "lone high surrogate"
                end
                else if hi >= 0xDC00 && hi <= 0xDFFF then
                  fail st.pos "lone low surrogate"
                else add_utf8 buf hi
            | c -> fail (st.pos - 1) (Printf.sprintf "bad escape \\%c" c));
            loop ()
        )
    | Some c when Char.code c < 0x20 ->
        fail st.pos "unescaped control character"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_digits () =
    let any = ref false in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some '0' .. '9' ->
          any := true;
          advance st
      | _ -> continue := false
    done;
    !any
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  (match peek st with
  | Some '0' -> advance st
  | Some '1' .. '9' -> ignore (consume_digits ())
  | _ -> fail st.pos "bad number");
  (match peek st with
  | Some '.' ->
      advance st;
      if not (consume_digits ()) then fail st.pos "bad fraction"
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      if not (consume_digits ()) then fail st.pos "bad exponent"
  | _ -> ());
  float_of_string (String.sub st.src start (st.pos - start))

let default_depth_limit = 512

(* [depth] counts open containers; degenerate feeds like "[[[[…" would
   otherwise overflow the stack of this recursive-descent parser *)
let rec parse_value st ~depth_limit depth =
  skip_ws st;
  if depth > depth_limit then
    fail st.pos
      (Printf.sprintf "nesting deeper than %d levels" depth_limit);
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Object []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let value = parse_value st ~depth_limit (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((key, value) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((key, value) :: acc)
          | _ -> fail st.pos "expected ',' or '}'"
        in
        Object (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value st ~depth_limit (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (value :: acc)
          | Some ']' ->
              advance st;
              List.rev (value :: acc)
          | _ -> fail st.pos "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> expect_keyword st "true" (Bool true)
  | Some 'f' -> expect_keyword st "false" (Bool false)
  | Some 'n' -> expect_keyword st "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number st)
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

let parse ?(depth_limit = default_depth_limit) s =
  let st = { src = s; pos = 0 } in
  match parse_value st ~depth_limit 0 with
  | v ->
      skip_ws st;
      if st.pos < String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON error at offset %d: %s" pos msg)

let parse_exn ?depth_limit s =
  match parse ?depth_limit s with Ok v -> v | Error msg -> invalid_arg msg

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent depth =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number f -> Buffer.add_string buf (number_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf key;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            emit (depth + 1) value)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let path keys t =
  List.fold_left
    (fun acc key -> Option.bind acc (member key))
    (Some t) keys

let to_list = function List items -> Some items | _ -> None
let to_float = function Number f -> Some f | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Number x, Number y -> x = y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Object xs, Object ys ->
      let sort fields =
        List.sort (fun (a, _) (b, _) -> String.compare a b) fields
      in
      let xs = sort xs and ys = sort ys in
      List.length xs = List.length ys
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           xs ys
  | _ -> false
