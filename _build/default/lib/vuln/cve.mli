(** CVE entries.

    A minimal model of an NVD record: the CVE identifier, its publication
    year, an optional CVSS base score, a one-line summary and the list of
    affected CPE names (Table I in the paper). *)

type t = private {
  id : string;            (** canonical id, e.g. ["CVE-2016-7153"] *)
  year : int;             (** year encoded in the id *)
  cvss : float option;    (** CVSS base score in [0,10] if known *)
  summary : string;
  affected : Cpe.t list;  (** CPE names of affected products *)
}

val make :
  ?cvss:float -> ?summary:string -> id:string -> Cpe.t list -> (t, string) result
(** [make ~id affected] validates [id] against the [CVE-YYYY-NNNN...] format
    (sequence number of at least four digits) and checks that [cvss], when
    given, lies in [0,10]. *)

val make_exn :
  ?cvss:float -> ?summary:string -> id:string -> Cpe.t list -> t
(** Like {!make} but raises [Invalid_argument]. *)

val affects : t -> pattern:Cpe.t -> bool
(** [affects cve ~pattern] is true when some affected CPE of [cve] falls
    under [pattern] (see {!Cpe.matches}). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders a simplified NVD summary in the style of the paper's Table I. *)
