module String_set = Set.Make (String)

type t = { entries : (string, Cve.t) Hashtbl.t }

let create () = { entries = Hashtbl.create 1024 }

let add t (cve : Cve.t) = Hashtbl.replace t.entries cve.id cve
let size t = Hashtbl.length t.entries
let find t id = Hashtbl.find_opt t.entries id
let fold f t init = Hashtbl.fold (fun _ cve acc -> f cve acc) t.entries init
let entries t = fold List.cons t []

let in_window ?since ?until (cve : Cve.t) =
  (match since with None -> true | Some y -> cve.year >= y)
  && match until with None -> true | Some y -> cve.year <= y

let vulns_of ?since ?until t pattern =
  fold
    (fun cve acc ->
      if in_window ?since ?until cve && Cve.affects cve ~pattern then
        String_set.add cve.id acc
      else acc)
    t String_set.empty

let count_of ?since ?until t pattern =
  String_set.cardinal (vulns_of ?since ?until t pattern)
