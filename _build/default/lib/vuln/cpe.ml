type part = Application | Operating_system | Hardware

type t = {
  part : part;
  vendor : string;
  product : string;
  version : string option;
}

let part_to_char = function
  | Application -> 'a'
  | Operating_system -> 'o'
  | Hardware -> 'h'

let part_of_char = function
  | 'a' -> Some Application
  | 'o' -> Some Operating_system
  | 'h' -> Some Hardware
  | _ -> None

let normalize s =
  String.lowercase_ascii s
  |> String.map (function ' ' -> '_' | c -> c)

let make ?version ~part ~vendor product =
  if vendor = "" then invalid_arg "Cpe.make: empty vendor";
  if product = "" then invalid_arg "Cpe.make: empty product";
  let version =
    match version with
    | Some ("" | "-" | "*") | None -> None
    | Some v -> Some (normalize v)
  in
  { part; vendor = normalize vendor; product = normalize product; version }

let of_string s =
  let prefix = "cpe:/" in
  let plen = String.length prefix in
  if String.length s <= plen || String.sub s 0 plen <> prefix then
    Error (Printf.sprintf "not a CPE URI binding: %S" s)
  else
    let rest = String.sub s plen (String.length s - plen) in
    match String.split_on_char ':' rest with
    | part_s :: vendor :: product :: tail when String.length part_s = 1 -> (
        match part_of_char part_s.[0] with
        | None -> Error (Printf.sprintf "unknown CPE part %S in %S" part_s s)
        | Some part ->
            if vendor = "" || product = "" then
              Error (Printf.sprintf "empty vendor or product in %S" s)
            else
              let version = match tail with v :: _ -> Some v | [] -> None in
              Ok (make ?version ~part ~vendor product))
    | _ -> Error (Printf.sprintf "malformed CPE %S" s)

let of_string_exn s =
  match of_string s with Ok c -> c | Error msg -> invalid_arg msg

let to_string { part; vendor; product; version } =
  let base = Printf.sprintf "cpe:/%c:%s:%s" (part_to_char part) vendor product in
  match version with None -> base | Some v -> base ^ ":" ^ v

let equal a b =
  a.part = b.part && a.vendor = b.vendor && a.product = b.product
  && a.version = b.version

let compare a b = Stdlib.compare (to_string a) (to_string b)

let matches ~pattern c =
  pattern.part = c.part && pattern.vendor = c.vendor
  && pattern.product = c.product
  && match pattern.version with None -> true | Some v -> Some v = c.version

let pp ppf c = Format.pp_print_string ppf (to_string c)
