(** In-memory National Vulnerability Database substrate.

    The paper fetches CVE records from the live NVD via CVE-SEARCH and
    filters them per product with CPE queries.  This module provides the
    same query surface over an in-memory store: add entries, look them up
    by id, and collect the vulnerability-id set of a product given a CPE
    pattern and a year window (the paper uses 1999-2016). *)

type t

module String_set : Set.S with type elt = string

val create : unit -> t

val add : t -> Cve.t -> unit
(** [add db cve] inserts [cve].  Re-adding an id replaces the old entry. *)

val size : t -> int
(** Number of distinct CVE ids stored. *)

val find : t -> string -> Cve.t option
(** [find db id] looks an entry up by CVE id. *)

val entries : t -> Cve.t list
(** All entries, in unspecified order. *)

val vulns_of : ?since:int -> ?until:int -> t -> Cpe.t -> String_set.t
(** [vulns_of db pattern] is the set of CVE ids affecting any product
    matched by [pattern], restricted to publication years in
    [[since, until]] when given.  This is the [V_x] of Definition 1. *)

val count_of : ?since:int -> ?until:int -> t -> Cpe.t -> int
(** [count_of db pattern] = cardinality of {!vulns_of}. *)

val fold : (Cve.t -> 'a -> 'a) -> t -> 'a -> 'a
