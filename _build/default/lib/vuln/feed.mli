(** NVD JSON data-feed reader and writer (schema 1.1).

    The NVD publishes yearly feeds such as [nvdcve-1.1-2016.json]; the
    paper's pipeline fetches them through CVE-SEARCH.  This module
    decodes the subset of the schema the similarity analysis needs — CVE
    id, description, publication year, affected CPEs from the
    configuration nodes, CVSS v2/v3 base scores — and can write an
    {!Nvd.t} back out in the same shape, so corpora round-trip through
    files.

    Both CPE 2.2 URIs ([cpe:/o:microsoft:windows_7]) and CPE 2.3
    formatted strings ([cpe:2.3:o:microsoft:windows_7:*:*:...]) are
    accepted. *)

val cpe23_of_string : string -> (Cpe.t, string) result
(** Parses a CPE 2.3 formatted string, mapping [*]/[-] version fields to
    "no version". *)

val decode : Json.t -> (Cve.t list * string list, string) result
(** [decode json] extracts the CVE items of a feed document.  Returns the
    decoded entries and a list of warnings for items that were skipped
    (malformed id, no usable CPE, a NaN or out-of-range [0,10] CVSS base
    score — the warning names the CVE id and the JSON path); only a
    structurally alien document yields [Error]. *)

val of_string : string -> (Cve.t list * string list, string) result
(** Parse + {!decode}. *)

val load_into : Nvd.t -> string -> (int * string list, string) result
(** [load_into db contents] decodes a feed and adds every entry to [db];
    returns the number added and the warnings. *)

val encode : Nvd.t -> Json.t
(** Writes a database as a feed document ([CVE_Items] with
    [CVE_data_meta], description, configurations with CPE 2.2 URIs,
    [baseMetricV2.cvssV2.baseScore] and [publishedDate]). *)

val to_string : ?pretty:bool -> Nvd.t -> string
(** {!encode} composed with {!Json.to_string}. *)
