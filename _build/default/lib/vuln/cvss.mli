(** CVSS base scores (v2 and v3.1).

    The paper weighs all vulnerabilities equally and lists severity-aware
    similarity as future work (citing "Some vulnerabilities are different
    than others").  This module implements the Common Vulnerability
    Scoring System base metrics so that {!Weighted} can weight the
    Jaccard overlap by severity: vector parsing ([AV:N/AC:L/...]), the
    official base-score formulas, and severity bands. *)

(** {1 CVSS v2} *)

module V2 : sig
  type access_vector = Local | Adjacent | Network
  type access_complexity = High | Medium | Low
  type authentication = Multiple | Single | None_required
  type impact = None_ | Partial | Complete

  type t = {
    av : access_vector;
    ac : access_complexity;
    au : authentication;
    c : impact;
    i : impact;
    a : impact;
  }

  val of_vector : string -> (t, string) result
  (** Parses a v2 base vector such as ["AV:N/AC:L/Au:N/C:P/I:P/A:P"]
      (metrics in any order; each exactly once). *)

  val to_vector : t -> string

  val base_score : t -> float
  (** Official v2 equation, rounded to one decimal; in [0, 10]. *)
end

(** {1 CVSS v3.1} *)

module V3 : sig
  type attack_vector = Network | Adjacent | Local | Physical
  type attack_complexity = Low | High
  type privileges = None_ | Low | High
  type interaction = None_ | Required
  type scope = Unchanged | Changed
  type impact = High | Low | None_

  type t = {
    av : attack_vector;
    ac : attack_complexity;
    pr : privileges;
    ui : interaction;
    s : scope;
    c : impact;
    i : impact;
    a : impact;
  }

  val of_vector : string -> (t, string) result
  (** Parses a v3.1 base vector such as
      ["CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"] (the
      ["CVSS:3.x/"] prefix is optional). *)

  val to_vector : t -> string

  val base_score : t -> float
  (** Official v3.1 equation with its round-up-to-one-decimal rule. *)
end

type severity = None_ | Low | Medium | High | Critical

val severity_of_score : float -> severity
(** v3 qualitative bands: 0 → None, (0,4) → Low, [4,7) → Medium,
    [7,9) → High, [9,10] → Critical. *)

val score : string -> (float, string) result
(** [score vector] parses either a v2 or a v3.1 vector (v3.1 is detected
    by a [CVSS:3] prefix or a [PR:] metric) and returns its base score. *)

val pp_severity : Format.formatter -> severity -> unit
