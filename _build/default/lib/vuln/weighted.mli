(** Severity-weighted vulnerability similarity.

    Generalizes Definition 1 along the paper's future-work direction
    ("a more systematic way to estimate the vulnerability similarity"):
    instead of counting every shared CVE equally, each vulnerability [v]
    contributes a weight [w(v)], giving the weighted Jaccard coefficient

    {v sim_w(x, y) = sum_{v in Vx ∩ Vy} w(v) / sum_{v in Vx ∪ Vy} w(v) v}

    With [w = 1] this is exactly the paper's metric.  The default weight
    is the CVE's CVSS base score scaled to [0,1] (unscored entries count
    as a middling 5.0), so that two products sharing critical
    vulnerabilities are considered far more alike than two sharing only
    low-severity ones. *)

val default_weight : Cve.t -> float
(** CVSS base score / 10, or 0.5 when the entry carries no score. *)

val weighted_jaccard :
  weight:(string -> float) -> Nvd.String_set.t -> Nvd.String_set.t -> float
(** Weighted Jaccard of two id sets; [weight] maps a CVE id to its
    weight.  Both sets empty (or all weights zero) yields 0. *)

val of_nvd :
  ?since:int ->
  ?until:int ->
  ?weight:(Cve.t -> float) ->
  Nvd.t ->
  (string * Cpe.t) list ->
  Similarity.table
(** Severity-weighted similarity table over named CPE patterns.  The
    stored "shared counts" are the plain intersection cardinalities (for
    display); the similarity values are weighted.
    @raise Invalid_argument if a weight is negative. *)
