type t = {
  id : string;
  year : int;
  cvss : float option;
  summary : string;
  affected : Cpe.t list;
}

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* Valid ids look like CVE-2016-7153; sequence numbers have >= 4 digits. *)
let parse_id id =
  match String.split_on_char '-' id with
  | [ "CVE"; year; seq ]
    when String.length year = 4 && is_digits year
         && String.length seq >= 4 && is_digits seq ->
      Some (int_of_string year)
  | _ -> None

let make ?cvss ?(summary = "") ~id affected =
  match parse_id id with
  | None -> Error (Printf.sprintf "malformed CVE id %S" id)
  | Some year -> (
      match cvss with
      | Some s when not (s >= 0.0 && s <= 10.0) ->
          Error (Printf.sprintf "CVSS score %g out of range for %s" s id)
      | _ -> Ok { id; year; cvss; summary; affected })

let make_exn ?cvss ?summary ~id affected =
  match make ?cvss ?summary ~id affected with
  | Ok t -> t
  | Error msg -> invalid_arg msg

let affects t ~pattern = List.exists (fun c -> Cpe.matches ~pattern c) t.affected

let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "@[<v>CVE-ID %s@,Vulnerable software & versions:@,%a@]"
    t.id
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Cpe.pp)
    t.affected
