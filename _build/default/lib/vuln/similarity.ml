module Ss = Nvd.String_set

let jaccard a b =
  let inter = Ss.cardinal (Ss.inter a b) in
  let union = Ss.cardinal (Ss.union a b) in
  if union = 0 then 0.0 else float_of_int inter /. float_of_int union

type table = {
  products : string array;
  totals : int array;         (* |V_i| *)
  shared : int array;         (* |V_i ∩ V_j|, flat n*n, symmetric *)
  sim : float array;          (* Jaccard, flat n*n, symmetric, 1 on diag *)
}

let size t = Array.length t.products

let product_name t i = t.products.(i)

let index t name =
  let n = size t in
  let rec loop i =
    if i >= n then None
    else if String.equal t.products.(i) name then Some i
    else loop (i + 1)
  in
  loop 0

let get t i j = t.sim.((i * size t) + j)
let shared_count t i j = t.shared.((i * size t) + j)

let find t a b =
  match (index t a, index t b) with
  | Some i, Some j -> Some (get t i j)
  | _ -> None

let build products totals shared_counts =
  let n = Array.length products in
  let sim = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let inter = shared_counts.((i * n) + j) in
      let union = totals.(i) + totals.(j) - inter in
      sim.((i * n) + j) <-
        (if i = j then 1.0
         else if union = 0 then 0.0
         else float_of_int inter /. float_of_int union)
    done
  done;
  { products; totals; shared = shared_counts; sim }

let of_nvd ?since ?until db products =
  let names = Array.of_list (List.map fst products) in
  let sets =
    Array.of_list
      (List.map (fun (_, cpe) -> Nvd.vulns_of ?since ?until db cpe) products)
  in
  let n = Array.length names in
  let totals = Array.map Ss.cardinal sets in
  let shared = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      shared.((i * n) + j) <-
        (if i = j then totals.(i)
         else Ss.cardinal (Ss.inter sets.(i) sets.(j)))
    done
  done;
  build names totals shared

let of_counts ~products ~totals ~shared =
  let n = Array.length products in
  if Array.length totals <> n then
    invalid_arg "Similarity.of_counts: totals length mismatch";
  Array.iteri
    (fun i total ->
      if total < 0 then
        invalid_arg
          (Printf.sprintf "Similarity.of_counts: negative total for %s"
             products.(i)))
    totals;
  let table = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    table.((i * n) + i) <- totals.(i)
  done;
  List.iter
    (fun (i, j, count) ->
      if i < 0 || i >= n || j < 0 || j >= n || i = j then
        invalid_arg "Similarity.of_counts: bad pair index";
      if count < 0 || count > totals.(i) || count > totals.(j) then
        invalid_arg
          (Printf.sprintf
             "Similarity.of_counts: shared count %d exceeds totals of %s/%s"
             count products.(i) products.(j));
      if table.((i * n) + j) <> 0 then
        invalid_arg "Similarity.of_counts: duplicate pair";
      table.((i * n) + j) <- count;
      table.((j * n) + i) <- count)
    shared;
  build products totals table

let with_values t values =
  let n = size t in
  if Array.length values <> n * n then
    invalid_arg "Similarity.with_values: size mismatch";
  let sim = Array.copy values in
  for i = 0 to n - 1 do
    sim.((i * n) + i) <- 1.0;
    for j = 0 to n - 1 do
      let v = sim.((i * n) + j) in
      if not (v >= 0.0 && v <= 1.0) then
        invalid_arg "Similarity.with_values: value out of [0,1]";
      if abs_float (v -. sim.((j * n) + i)) > 1e-9 && i <> j then
        invalid_arg "Similarity.with_values: not symmetric"
    done
  done;
  { t with sim }

let pp ppf t =
  let n = size t in
  let open Format in
  let name_width =
    Array.fold_left (fun acc p -> max acc (String.length p)) 8 t.products + 2
  in
  let cell_width = max 16 (name_width + 1) in
  fprintf ppf "@[<v>";
  fprintf ppf "%-*s" name_width "";
  for j = 0 to n - 1 do
    fprintf ppf "%-*s" cell_width t.products.(j)
  done;
  pp_print_cut ppf ();
  for i = 0 to n - 1 do
    fprintf ppf "%-*s" name_width t.products.(i);
    for j = 0 to i do
      let cell =
        if i = j then sprintf "1.00 (%d)" t.totals.(i)
        else sprintf "%.3f (%d)" (get t i j) (shared_count t i j)
      in
      fprintf ppf "%-*s" cell_width cell
    done;
    pp_print_cut ppf ()
  done;
  fprintf ppf "@]"
