(** Vulnerability similarity of products (Definition 1).

    The similarity of two products is the Jaccard coefficient of their
    vulnerability sets, [sim(x,y) = |Vx ∩ Vy| / |Vx ∪ Vy|].  Pairwise
    similarities over a product list are stored as a {e similarity table}
    (the paper's Tables II and III). *)

val jaccard : Nvd.String_set.t -> Nvd.String_set.t -> float
(** Jaccard similarity coefficient of two id sets.  Two empty sets have
    similarity 0 (no statistical evidence of overlap). *)

type table
(** A symmetric table of pairwise similarities over named products, also
    recording vulnerability totals and shared-vulnerability counts. *)

val of_nvd :
  ?since:int -> ?until:int -> Nvd.t -> (string * Cpe.t) list -> table
(** [of_nvd db products] computes the full pairwise table for the named CPE
    patterns by querying [db] (Section III of the paper). *)

val of_counts :
  products:string array -> totals:int array -> shared:(int * int * int) list ->
  table
(** [of_counts ~products ~totals ~shared] builds a table directly from
    curated counts: [totals.(i)] is [|V_i|] and [(i, j, n)] in [shared] sets
    [|V_i ∩ V_j| = n].  Unlisted pairs share nothing.
    @raise Invalid_argument on inconsistent data (e.g. [n] larger than
    either total, out-of-range indices, duplicate pairs). *)

val size : table -> int
val product_name : table -> int -> string

val index : table -> string -> int option
(** Index of a product by name. *)

val get : table -> int -> int -> float
(** [get t i j] is [sim(i,j)]; symmetric; [get t i i = 1]. *)

val shared_count : table -> int -> int -> int
(** Number of shared vulnerabilities; on the diagonal, the product's total. *)

val find : table -> string -> string -> float option
(** Similarity by product names. *)

val with_values : table -> float array -> table
(** [with_values t sims] returns a table with the same products and
    shared counts but similarity values taken from the [n*n] row-major
    array [sims] (diagonal entries are forced to 1).  Used by weighted
    similarity variants.
    @raise Invalid_argument on size mismatch, asymmetry or out-of-range
    values. *)

val pp : Format.formatter -> table -> unit
(** Renders the lower-triangular table in the style of the paper's
    Tables II/III: similarity with shared counts in brackets. *)
