(** Curated vulnerability corpora and synthetic NVD generation.

    The paper computes its similarity tables from the live NVD (CVEs
    published 1999-2016).  This repository runs offline, so we embed the
    statistics the paper itself publishes — per-product vulnerability totals
    and pairwise shared-CVE counts of Tables II (operating systems) and III
    (web browsers), plus an analogously curated table for database products —
    and provide {!synthesize}, which fabricates a CVE corpus whose pairwise
    Jaccard similarities reproduce those counts exactly.  Downstream code
    consumes only similarity tables, so the substitution is behaviour
    preserving (see DESIGN.md). *)

type spec = {
  label : string;  (** e.g. ["os"], ["browser"], ["database"] *)
  products : (string * Cpe.t) array;  (** display name and CPE pattern *)
  totals : int array;  (** per-product vulnerability totals, [|V_i|] *)
  shared : (int * int * int) list;
      (** [(i, j, n)]: products [i] and [j] share [n] CVEs; unlisted pairs
          share none *)
}

val os_spec : spec
(** Table II: 9 common OS products, CVEs 1999-2016. *)

val browser_spec : spec
(** Table III: 8 common web browsers.  The paper's SeaMonkey/Opera cell is a
    printing error (it repeats SeaMonkey's total); we curate a small overlap
    consistent with the neighbouring cells. *)

val database_spec : spec
(** Database servers used in the case study (Table IV).  The paper states
    these were "obtained in the same way" but does not print the table; the
    counts here are curated (MySQL/MariaDB share a large fork heritage,
    cross-vendor pairs share nothing). *)

val all_specs : spec list

val table : spec -> Similarity.table
(** Similarity table straight from the curated counts. *)

val synthesize : spec -> Nvd.t
(** [synthesize spec] builds an NVD instance containing synthetic CVE
    entries (ids, years spread over 1999-2016, affected CPE lists) whose
    per-product totals and pairwise intersections match [spec] exactly.
    Works by greedily emitting CVEs that affect {e groups} of products,
    since pairwise overlaps alone are unrealizable when a product's
    pairwise counts sum past its total (e.g. Windows 8.1 in Table II).
    @raise Failure if the spec is not realizable by the greedy construction. *)

val find_spec : string -> spec option
(** Look a built-in spec up by label. *)
