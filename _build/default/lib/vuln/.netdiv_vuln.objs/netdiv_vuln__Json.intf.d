lib/vuln/json.mli:
