lib/vuln/corpus.ml: Array Cpe Cve Hashtbl List Nvd Printf Similarity String
