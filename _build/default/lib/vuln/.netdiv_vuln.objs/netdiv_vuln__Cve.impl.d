lib/vuln/cve.ml: Cpe Format List Printf Stdlib String
