lib/vuln/corpus.mli: Cpe Nvd Similarity
