lib/vuln/weighted.ml: Array Cve Hashtbl List Nvd Printf Similarity
