lib/vuln/cvss.ml: Float Format List Printf Result String
