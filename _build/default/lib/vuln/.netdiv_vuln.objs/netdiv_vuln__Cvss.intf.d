lib/vuln/cvss.mli: Format
