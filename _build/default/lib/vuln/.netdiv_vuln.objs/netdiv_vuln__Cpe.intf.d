lib/vuln/cpe.mli: Format
