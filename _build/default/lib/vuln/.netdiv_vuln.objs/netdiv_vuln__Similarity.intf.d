lib/vuln/similarity.mli: Cpe Format Nvd
