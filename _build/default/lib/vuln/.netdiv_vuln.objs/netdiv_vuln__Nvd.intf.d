lib/vuln/nvd.mli: Cpe Cve Set
