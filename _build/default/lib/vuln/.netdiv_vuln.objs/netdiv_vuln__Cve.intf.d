lib/vuln/cve.mli: Cpe Format
