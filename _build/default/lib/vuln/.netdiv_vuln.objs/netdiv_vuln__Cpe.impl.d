lib/vuln/cpe.ml: Format Printf Stdlib String
