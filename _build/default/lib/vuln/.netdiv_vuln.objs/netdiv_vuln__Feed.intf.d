lib/vuln/feed.mli: Cpe Cve Json Nvd
