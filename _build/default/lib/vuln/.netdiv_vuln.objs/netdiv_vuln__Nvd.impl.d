lib/vuln/nvd.ml: Cve Hashtbl List Set String
