lib/vuln/weighted.mli: Cpe Cve Nvd Similarity
