lib/vuln/feed.ml: Cpe Cve Float Json List Nvd Printf String
