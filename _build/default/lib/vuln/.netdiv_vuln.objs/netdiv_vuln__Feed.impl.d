lib/vuln/feed.ml: Cpe Cve Json List Nvd Printf String
