lib/vuln/similarity.ml: Array Format List Nvd Printf String
