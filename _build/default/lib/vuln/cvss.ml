let split_metrics s =
  String.split_on_char '/' s
  |> List.filter (fun part -> part <> "")
  |> List.map (fun part ->
         match String.index_opt part ':' with
         | Some k ->
             Ok
               ( String.sub part 0 k,
                 String.sub part (k + 1) (String.length part - k - 1) )
         | None -> Error (Printf.sprintf "malformed metric %S" part))
  |> List.fold_left
       (fun acc item ->
         match (acc, item) with
         | Error e, _ -> Error e
         | _, Error e -> Error e
         | Ok xs, Ok x -> Ok (x :: xs))
       (Ok [])
  |> Result.map List.rev

let lookup metrics name =
  match List.assoc_opt name metrics with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing metric %s" name)

let check_once metrics =
  let rec go seen = function
    | [] -> Ok ()
    | (name, _) :: rest ->
        if List.mem name seen then
          Error (Printf.sprintf "duplicate metric %s" name)
        else go (name :: seen) rest
  in
  go [] metrics

module V2 = struct
  type access_vector = Local | Adjacent | Network
  type access_complexity = High | Medium | Low
  type authentication = Multiple | Single | None_required
  type impact = None_ | Partial | Complete

  type t = {
    av : access_vector;
    ac : access_complexity;
    au : authentication;
    c : impact;
    i : impact;
    a : impact;
  }

  let impact_of_string = function
    | "N" -> Ok None_
    | "P" -> Ok Partial
    | "C" -> Ok Complete
    | v -> Error (Printf.sprintf "bad impact %S" v)

  let of_vector s =
    let ( let* ) = Result.bind in
    let* metrics = split_metrics s in
    let* () = check_once metrics in
    let* av =
      let* v = lookup metrics "AV" in
      match v with
      | "L" -> Ok Local
      | "A" -> Ok Adjacent
      | "N" -> Ok Network
      | v -> Error (Printf.sprintf "bad AV %S" v)
    in
    let* ac =
      let* v = lookup metrics "AC" in
      match v with
      | "H" -> Ok High
      | "M" -> Ok Medium
      | "L" -> Ok Low
      | v -> Error (Printf.sprintf "bad AC %S" v)
    in
    let* au =
      let* v = lookup metrics "Au" in
      match v with
      | "M" -> Ok Multiple
      | "S" -> Ok Single
      | "N" -> Ok None_required
      | v -> Error (Printf.sprintf "bad Au %S" v)
    in
    let* c = Result.bind (lookup metrics "C") impact_of_string in
    let* i = Result.bind (lookup metrics "I") impact_of_string in
    let* a = Result.bind (lookup metrics "A") impact_of_string in
    Ok { av; ac; au; c; i; a }

  let impact_to_string = function None_ -> "N" | Partial -> "P" | Complete -> "C"

  let to_vector t =
    Printf.sprintf "AV:%s/AC:%s/Au:%s/C:%s/I:%s/A:%s"
      (match t.av with Local -> "L" | Adjacent -> "A" | Network -> "N")
      (match t.ac with High -> "H" | Medium -> "M" | Low -> "L")
      (match t.au with Multiple -> "M" | Single -> "S" | None_required -> "N")
      (impact_to_string t.c) (impact_to_string t.i) (impact_to_string t.a)

  let impact_weight = function
    | None_ -> 0.0
    | Partial -> 0.275
    | Complete -> 0.660

  let round1 x = Float.round (x *. 10.0) /. 10.0

  let base_score t =
    let impact =
      10.41
      *. (1.0
          -. (1.0 -. impact_weight t.c)
             *. (1.0 -. impact_weight t.i)
             *. (1.0 -. impact_weight t.a))
    in
    let av =
      match t.av with Local -> 0.395 | Adjacent -> 0.646 | Network -> 1.0
    in
    let ac = match t.ac with High -> 0.35 | Medium -> 0.61 | Low -> 0.71 in
    let au =
      match t.au with
      | Multiple -> 0.45
      | Single -> 0.56
      | None_required -> 0.704
    in
    let exploitability = 20.0 *. av *. ac *. au in
    let f_impact = if impact = 0.0 then 0.0 else 1.176 in
    round1
      (((0.6 *. impact) +. (0.4 *. exploitability) -. 1.5) *. f_impact)
end

module V3 = struct
  type attack_vector = Network | Adjacent | Local | Physical
  type attack_complexity = Low | High
  type privileges = None_ | Low | High
  type interaction = None_ | Required
  type scope = Unchanged | Changed
  type impact = High | Low | None_

  type t = {
    av : attack_vector;
    ac : attack_complexity;
    pr : privileges;
    ui : interaction;
    s : scope;
    c : impact;
    i : impact;
    a : impact;
  }

  let impact_of_string = function
    | "H" -> Ok (High : impact)
    | "L" -> Ok Low
    | "N" -> Ok None_
    | v -> Error (Printf.sprintf "bad impact %S" v)

  let strip_prefix s =
    let prefixes = [ "CVSS:3.1/"; "CVSS:3.0/" ] in
    List.fold_left
      (fun acc p ->
        let pl = String.length p in
        if String.length acc >= pl && String.sub acc 0 pl = p then
          String.sub acc pl (String.length acc - pl)
        else acc)
      s prefixes

  let of_vector s =
    let ( let* ) = Result.bind in
    let* metrics = split_metrics (strip_prefix s) in
    let* () = check_once metrics in
    let* av =
      let* v = lookup metrics "AV" in
      match v with
      | "N" -> Ok Network
      | "A" -> Ok Adjacent
      | "L" -> Ok Local
      | "P" -> Ok Physical
      | v -> Error (Printf.sprintf "bad AV %S" v)
    in
    let* ac =
      let* v = lookup metrics "AC" in
      match v with
      | "L" -> Ok (Low : attack_complexity)
      | "H" -> Ok High
      | v -> Error (Printf.sprintf "bad AC %S" v)
    in
    let* pr =
      let* v = lookup metrics "PR" in
      match v with
      | "N" -> Ok (None_ : privileges)
      | "L" -> Ok Low
      | "H" -> Ok High
      | v -> Error (Printf.sprintf "bad PR %S" v)
    in
    let* ui =
      let* v = lookup metrics "UI" in
      match v with
      | "N" -> Ok (None_ : interaction)
      | "R" -> Ok Required
      | v -> Error (Printf.sprintf "bad UI %S" v)
    in
    let* scope =
      let* v = lookup metrics "S" in
      match v with
      | "U" -> Ok Unchanged
      | "C" -> Ok Changed
      | v -> Error (Printf.sprintf "bad S %S" v)
    in
    let* c = Result.bind (lookup metrics "C") impact_of_string in
    let* i = Result.bind (lookup metrics "I") impact_of_string in
    let* a = Result.bind (lookup metrics "A") impact_of_string in
    Ok { av; ac; pr; ui; s = scope; c; i; a }

  let impact_to_string = function
    | (High : impact) -> "H"
    | Low -> "L"
    | None_ -> "N"

  let to_vector t =
    Printf.sprintf "CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s"
      (match t.av with
      | Network -> "N"
      | Adjacent -> "A"
      | Local -> "L"
      | Physical -> "P")
      (match t.ac with Low -> "L" | High -> "H")
      (match t.pr with None_ -> "N" | Low -> "L" | High -> "H")
      (match t.ui with None_ -> "N" | Required -> "R")
      (match t.s with Unchanged -> "U" | Changed -> "C")
      (impact_to_string t.c) (impact_to_string t.i) (impact_to_string t.a)

  let impact_weight = function
    | (High : impact) -> 0.56
    | Low -> 0.22
    | None_ -> 0.0

  (* official round-up to one decimal, with the v3.1 integer trick *)
  let roundup x =
    let i = Float.round (x *. 100_000.0) in
    if Float.rem i 10_000.0 = 0.0 then i /. 100_000.0
    else (Float.of_int (int_of_float (i /. 10_000.0)) +. 1.0) /. 10.0

  let base_score t =
    let iss =
      1.0
      -. (1.0 -. impact_weight t.c)
         *. (1.0 -. impact_weight t.i)
         *. (1.0 -. impact_weight t.a)
    in
    let impact =
      match t.s with
      | Unchanged -> 6.42 *. iss
      | Changed ->
          (7.52 *. (iss -. 0.029)) -. (3.25 *. ((iss -. 0.02) ** 15.0))
    in
    let av =
      match t.av with
      | Network -> 0.85
      | Adjacent -> 0.62
      | Local -> 0.55
      | Physical -> 0.2
    in
    let ac = match t.ac with Low -> 0.77 | High -> 0.44 in
    let pr =
      match (t.pr, t.s) with
      | (None_ : privileges), _ -> 0.85
      | Low, Unchanged -> 0.62
      | Low, Changed -> 0.68
      | High, Unchanged -> 0.27
      | High, Changed -> 0.5
    in
    let ui = match t.ui with None_ -> 0.85 | Required -> 0.62 in
    let exploitability = 8.22 *. av *. ac *. pr *. ui in
    if impact <= 0.0 then 0.0
    else
      match t.s with
      | Unchanged -> roundup (Float.min (impact +. exploitability) 10.0)
      | Changed ->
          roundup (Float.min (1.08 *. (impact +. exploitability)) 10.0)
end

type severity = None_ | Low | Medium | High | Critical

let severity_of_score s =
  if s <= 0.0 then None_
  else if s < 4.0 then Low
  else if s < 7.0 then Medium
  else if s < 9.0 then High
  else Critical

let score vector =
  let is_v3 =
    (String.length vector >= 6 && String.sub vector 0 6 = "CVSS:3")
    ||
    (* v3-only metric *)
    List.exists
      (fun part -> String.length part >= 3 && String.sub part 0 3 = "PR:")
      (String.split_on_char '/' vector)
  in
  if is_v3 then Result.map V3.base_score (V3.of_vector vector)
  else Result.map V2.base_score (V2.of_vector vector)

let pp_severity ppf s =
  Format.pp_print_string ppf
    (match s with
    | None_ -> "none"
    | Low -> "low"
    | Medium -> "medium"
    | High -> "high"
    | Critical -> "critical")
