(** Common Platform Enumeration (CPE) names.

    CPE is the naming scheme the NVD uses to identify the products affected
    by a vulnerability, e.g. [cpe:/o:microsoft:windows_7].  This module
    implements the URI-style binding used throughout the paper (Section III),
    restricted to the fields the similarity analysis needs: part, vendor,
    product and an optional version. *)

type part =
  | Application      (** [a] — application software *)
  | Operating_system (** [o] — operating systems *)
  | Hardware         (** [h] — hardware devices *)

type t = private {
  part : part;
  vendor : string;
  product : string;
  version : string option;
}

val make : ?version:string -> part:part -> vendor:string -> string -> t
(** [make ~part ~vendor product] builds a CPE name.  Vendor and product are
    normalized to lowercase with spaces replaced by underscores.
    @raise Invalid_argument if vendor or product is empty. *)

val of_string : string -> (t, string) result
(** [of_string s] parses a URI binding such as ["cpe:/o:microsoft:windows_7"]
    or ["cpe:/a:google:chrome:50.0"].  Trailing ["-"] or ["*"] version fields
    are treated as "no version". *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on parse errors. *)

val to_string : t -> string
(** [to_string c] renders the URI binding, e.g. ["cpe:/o:microsoft:windows_7"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val matches : pattern:t -> t -> bool
(** [matches ~pattern c] is true when [c] falls under [pattern]: parts,
    vendors and products must be equal, and if [pattern] carries a version it
    must equal [c]'s version (a version-less pattern matches any version).
    This mirrors how CPE queries of different granularities select NVD
    entries. *)

val part_to_char : part -> char
val pp : Format.formatter -> t -> unit
