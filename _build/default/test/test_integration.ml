(* Cross-library integration tests: each locks in one of the headline
   experimental claims end-to-end (optimizer -> evaluation), so a
   regression in any layer breaks a visible property, not just a unit. *)

module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize
module Encode = Netdiv_core.Encode
module Cost = Netdiv_core.Cost
module Serial = Netdiv_core.Serial
module Attack_bn = Netdiv_bayes.Attack_bn
module Engine = Netdiv_sim.Engine
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products
module Scaled = Netdiv_casestudy.Scaled

let net = Products.network ()
let entry = Topology.host "c4"
let target = Topology.host Topology.target

(* diversity buys containment: under the same detector, the optimal
   deployment is compromised far less often than the homogeneous one *)
let test_defense_compounds_with_diversity () =
  let optimal = (Optimize.run net []).Optimize.assignment in
  let mono = Assignment.mono net in
  let compromised a seed =
    let stats =
      Engine.mttc_defended
        ~rng:(Random.State.make [| seed |])
        ~defense:{ Engine.detect_rate = 0.03; immunize = true }
        ~max_ticks:2000 ~runs:300 a ~entry ~target
    in
    float_of_int stats.Engine.successes /. float_of_int stats.Engine.runs
  in
  let p_optimal = compromised optimal 1 in
  let p_mono = compromised mono 2 in
  Alcotest.(check bool) "mono leaks badly" true (p_mono > 0.7);
  Alcotest.(check bool) "diversity contains" true (p_optimal < 0.5);
  Alcotest.(check bool) "at least 2x better" true
    (p_optimal *. 2.0 < p_mono)

(* the static-arsenal worm is the one diversity hurts the most *)
let test_attacker_capability_ordering () =
  let optimal = (Optimize.run net []).Optimize.assignment in
  let mttc strategy seed =
    (Engine.mttc
       ~rng:(Random.State.make [| seed |])
       ~strategy ~runs:400 optimal ~entry ~target)
      .Engine.mean_ticks
  in
  let recon = mttc Engine.Best_exploit 3 in
  let uniform = mttc Engine.Uniform_exploit 4 in
  let arsenal = mttc Engine.Arsenal_exploit 5 in
  (* recon <= uniform holds per-edge in expectation; end-to-end MTTC
     differs only within sampling noise, so allow 10% slack *)
  Alcotest.(check bool) "recon not slower than uniform" true
    (recon <= uniform *. 1.1);
  Alcotest.(check bool) "static worm far slower" true
    (arsenal > 1.5 *. uniform)

(* hardening the approaches to the target costs global diversity but
   keeps the reconnaissance worm at least as slow *)
let test_defense_in_depth () =
  let dist = Netdiv_graph.Traversal.bfs (Network.graph net) target in
  let weight u v =
    if dist.(u) >= 0 && dist.(v) >= 0 && min dist.(u) dist.(v) <= 1 then 5.0
    else 1.0
  in
  let plain = Optimize.run net [] in
  let hardened = Optimize.run ~edge_weight:weight net [] in
  let e = Encode.encode net [] in
  Alcotest.(check bool) "global diversity paid" true
    (Encode.assignment_energy e hardened.Optimize.assignment
    >= Encode.assignment_energy e plain.Optimize.assignment -. 1e-9);
  (* the payoff is against the reconnaissance attacker: the hardened
     perimeter slows the worm down (cf. the [Ablation] bench, where MTTC
     improves from every entry) *)
  let mttc a seed =
    (Engine.mttc
       ~rng:(Random.State.make [| seed |])
       ~runs:400 a ~entry ~target)
      .Engine.mean_ticks
  in
  Alcotest.(check bool) "worm not faster against the hardened net" true
    (mttc hardened.Optimize.assignment 11
    >= 0.95 *. mttc plain.Optimize.assignment 12)

(* frozen legacy hosts put a hard floor under any license budget *)
let test_cost_floor_from_legacy () =
  let license ~host:_ ~service ~product =
    match (service, product) with
    | 0, (0 | 1) -> 2.0
    | 1, (0 | 1) -> 0.5
    | 2, (0 | 1) -> 4.0
    | _ -> 0.0
  in
  (* the frozen hosts alone cost more than 50 units *)
  (match Cost.cheapest_under ~cost:license ~budget:50.0 net [] with
  | None -> ()
  | Some p ->
      Alcotest.failf "budget 50 should be infeasible, got cost %.1f"
        p.Cost.cost);
  match Cost.cheapest_under ~cost:license ~budget:85.0 net [] with
  | Some p -> Alcotest.(check bool) "within budget" true (p.Cost.cost <= 85.0)
  | None -> Alcotest.fail "budget 85 is feasible"

(* a scaled instance survives serialization and re-optimizes identically *)
let test_scaled_serial_roundtrip () =
  let s = Scaled.generate ~scale:3 () in
  let dumped = Serial.network_to_string s.Scaled.network in
  match Serial.network_of_string dumped with
  | Error e -> Alcotest.fail e
  | Ok net' ->
      let a = Optimize.run s.Scaled.network [] in
      let b = Optimize.run net' [] in
      Alcotest.(check (float 1e-9)) "same optimum" a.Optimize.energy
        b.Optimize.energy

(* the d_bn metric and the simulator agree on who is safest *)
let test_metric_and_simulator_agree () =
  let optimal = (Optimize.run net []).Optimize.assignment in
  let mono = Assignment.mono net in
  let dbn a = Attack_bn.diversity a ~entry ~target in
  let mttc a seed =
    (Engine.mttc
       ~rng:(Random.State.make [| seed |])
       ~runs:300 a ~entry ~target)
      .Engine.mean_ticks
  in
  Alcotest.(check bool) "metric prefers optimal" true
    (dbn optimal > dbn mono);
  Alcotest.(check bool) "simulator prefers optimal" true
    (mttc optimal 7 > mttc mono 8)

let () =
  Alcotest.run "integration"
    [
      ( "claims",
        [
          Alcotest.test_case "defense compounds with diversity" `Slow
            test_defense_compounds_with_diversity;
          Alcotest.test_case "attacker capability ordering" `Slow
            test_attacker_capability_ordering;
          Alcotest.test_case "defense in depth" `Quick test_defense_in_depth;
          Alcotest.test_case "legacy cost floor" `Quick
            test_cost_floor_from_legacy;
          Alcotest.test_case "scaled serialization round-trip" `Quick
            test_scaled_serial_roundtrip;
          Alcotest.test_case "metric and simulator agree" `Quick
            test_metric_and_simulator_agree;
        ] );
    ]
