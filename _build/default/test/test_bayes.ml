(* Tests for the Bayesian-network substrate: factors, CPDs, exact and
   approximate inference, and the attack-BN diversity metric. *)

open Netdiv_bayes
module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment

let check_float = Alcotest.(check (float 1e-9))
let rng seed = Random.State.make [| seed |]

(* --------------------------------------------------------------- factor *)

let test_factor_of_fun () =
  let f = Factor.of_fun ~vars:[| 3; 1 |] (fun v ->
      (if v.(0) then 1.0 else 0.0) +. if v.(1) then 2.0 else 0.0) in
  (* vars sorted to [1;3]; v.(0) is var 1 *)
  Alcotest.(check (array int)) "sorted" [| 1; 3 |] (Factor.vars f);
  check_float "11" 3.0 (Factor.value f [ (1, true); (3, true) ]);
  check_float "10" 1.0 (Factor.value f [ (1, true); (3, false) ]);
  check_float "01" 2.0 (Factor.value f [ (1, false); (3, true) ])

let test_factor_product () =
  let a = Factor.of_fun ~vars:[| 0 |] (fun v -> if v.(0) then 0.7 else 0.3) in
  let b = Factor.of_fun ~vars:[| 0; 1 |] (fun v ->
      if v.(0) = v.(1) then 0.9 else 0.1) in
  let p = Factor.product a b in
  Alcotest.(check (array int)) "union vars" [| 0; 1 |] (Factor.vars p);
  check_float "joint" (0.7 *. 0.9)
    (Factor.value p [ (0, true); (1, true) ]);
  check_float "joint2" (0.3 *. 0.1)
    (Factor.value p [ (0, false); (1, true) ])

let test_factor_sum_out () =
  let f = Factor.of_fun ~vars:[| 0; 1 |] (fun v ->
      match (v.(0), v.(1)) with
      | false, false -> 1.0
      | false, true -> 2.0
      | true, false -> 3.0
      | true, true -> 4.0) in
  let g = Factor.sum_out f 0 in
  Alcotest.(check (array int)) "remaining" [| 1 |] (Factor.vars g);
  check_float "marginal false" 4.0 (Factor.value g [ (1, false) ]);
  check_float "marginal true" 6.0 (Factor.value g [ (1, true) ]);
  check_float "total preserved" (Factor.total f) (Factor.total g)

let test_factor_restrict () =
  let f = Factor.of_fun ~vars:[| 0; 1 |] (fun v ->
      (if v.(0) then 2.0 else 1.0) *. if v.(1) then 5.0 else 1.0) in
  let g = Factor.restrict f 0 true in
  check_float "restricted" 10.0 (Factor.value g [ (1, true) ]);
  check_float "restricted2" 2.0 (Factor.value g [ (1, false) ]);
  (* restricting an absent variable is a no-op *)
  let h = Factor.restrict f 9 true in
  Alcotest.(check bool) "noop" true (Factor.equal f h)

let test_factor_validation () =
  (match Factor.of_fun ~vars:[| 1; 1 |] (fun _ -> 0.0) with
  | _ -> Alcotest.fail "accepted duplicate var"
  | exception Invalid_argument _ -> ());
  match Factor.of_fun ~vars:(Array.init 26 Fun.id) (fun _ -> 0.0) with
  | _ -> Alcotest.fail "accepted 26 vars"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------- bn *)

let test_bn_build () =
  let bn = Bn.create () in
  let a = Bn.add bn ~name:"a" ~parents:[||] (Bn.Table [| 0.4 |]) in
  let b =
    Bn.add bn ~name:"b" ~parents:[| a |] (Bn.Table [| 0.1; 0.9 |])
  in
  Alcotest.(check int) "two nodes" 2 (Bn.n_nodes bn);
  Alcotest.(check bool) "find" true (Bn.find bn "b" = Some b);
  check_float "root prior" 0.4 (Bn.prob_true bn a [||]);
  check_float "cpd" 0.9 (Bn.prob_true bn b [| true |]);
  check_float "cpd2" 0.1 (Bn.prob_true bn b [| false |])

let test_bn_validation () =
  let bn = Bn.create () in
  (match Bn.add bn ~name:"x" ~parents:[| 5 |] (Bn.Table [| 0.5; 0.5 |]) with
  | _ -> Alcotest.fail "accepted forward parent"
  | exception Invalid_argument _ -> ());
  (match Bn.add bn ~name:"x" ~parents:[||] (Bn.Table [| 1.5 |]) with
  | _ -> Alcotest.fail "accepted probability > 1"
  | exception Invalid_argument _ -> ());
  match Bn.add bn ~name:"x" ~parents:[||] (Bn.Table [| 0.5; 0.5 |]) with
  | _ -> Alcotest.fail "accepted oversized CPT"
  | exception Invalid_argument _ -> ()

let test_noisy_or () =
  let bn = Bn.create () in
  let a = Bn.add bn ~name:"a" ~parents:[||] (Bn.Table [| 1.0 |]) in
  let b = Bn.add bn ~name:"b" ~parents:[||] (Bn.Table [| 1.0 |]) in
  let c =
    Bn.add bn ~name:"c" ~parents:[| a; b |]
      (Bn.Noisy_or { rates = [| 0.5; 0.5 |]; leak = 0.0 })
  in
  check_float "both parents" 0.75 (Bn.prob_true bn c [| true; true |]);
  check_float "one parent" 0.5 (Bn.prob_true bn c [| true; false |]);
  check_float "no parent" 0.0 (Bn.prob_true bn c [| false; false |]);
  let leaky =
    Bn.add bn ~name:"d" ~parents:[| a |]
      (Bn.Noisy_or { rates = [| 0.5 |]; leak = 0.2 })
  in
  check_float "leak only" 0.2 (Bn.prob_true bn leaky [| false |]);
  check_float "leak + cause" 0.6 (Bn.prob_true bn leaky [| true |])

(* ---------------------------------------------------------------- infer *)

(* a known three-node chain: P(c=T) by hand *)
let chain_bn () =
  let bn = Bn.create () in
  let a = Bn.add bn ~name:"a" ~parents:[||] (Bn.Table [| 0.6 |]) in
  let b = Bn.add bn ~name:"b" ~parents:[| a |] (Bn.Table [| 0.2; 0.7 |]) in
  let c = Bn.add bn ~name:"c" ~parents:[| b |] (Bn.Table [| 0.1; 0.5 |]) in
  (bn, a, b, c)

let test_exact_chain () =
  let bn, _, b, c = chain_bn () in
  (* P(b) = .6*.7 + .4*.2 = 0.5 ; P(c) = .5*.5 + .5*.1 = 0.3 *)
  check_float "P(b)" 0.5 (Infer.exact_marginal bn b);
  check_float "P(c)" 0.3 (Infer.exact_marginal bn c)

let test_exact_with_evidence () =
  let bn, a, _, c = chain_bn () in
  (* conditioning on the root changes the leaf *)
  let p_given_a = Infer.exact_marginal ~evidence:[ (a, true) ] bn c in
  check_float "P(c|a)" ((0.7 *. 0.5) +. (0.3 *. 0.1)) p_given_a;
  (* and diagnostic reasoning: P(a|c) via Bayes *)
  let p_a_given_c = Infer.exact_marginal ~evidence:[ (c, true) ] bn a in
  let expected = 0.6 *. ((0.7 *. 0.5) +. (0.3 *. 0.1)) /. 0.3 in
  check_float "P(a|c)" expected p_a_given_c

let random_dag_bn rng n =
  let bn = Bn.create () in
  for i = 0 to n - 1 do
    let parents =
      List.init i Fun.id
      |> List.filter (fun _ -> Random.State.float rng 1.0 < 0.4)
      |> Array.of_list
    in
    let k = Array.length parents in
    if k <= 3 then
      ignore
        (Bn.add bn ~name:(string_of_int i) ~parents
           (Bn.Table (Array.init (1 lsl k) (fun _ -> Random.State.float rng 1.0))))
    else
      ignore
        (Bn.add bn ~name:(string_of_int i) ~parents
           (Bn.Noisy_or
              { rates = Array.init k (fun _ -> Random.State.float rng 1.0);
                leak = 0.05 }))
  done;
  bn

let test_exact_vs_brute () =
  for seed = 1 to 10 do
    let bn = random_dag_bn (rng seed) (5 + (seed mod 4)) in
    let q = Bn.n_nodes bn - 1 in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d" seed)
      (Infer.joint_brute_force bn q)
      (Infer.exact_marginal bn q)
  done

let test_exact_vs_brute_evidence () =
  for seed = 1 to 10 do
    let bn = random_dag_bn (rng (50 + seed)) 6 in
    let evidence = [ (0, true); (2, false) ] in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "seed %d" seed)
      (Infer.joint_brute_force ~evidence bn 5)
      (Infer.exact_marginal ~evidence bn 5)
  done

let test_sampling_converges () =
  let bn, _, _, c = chain_bn () in
  let estimate =
    Infer.estimate_marginal ~rng:(rng 3) ~samples:100_000 bn c
  in
  Alcotest.(check (float 0.01)) "forward estimate" 0.3 estimate;
  let weighted =
    Infer.estimate_marginal ~rng:(rng 4) ~samples:100_000
      ~evidence:[ (0, true) ] bn c
  in
  Alcotest.(check (float 0.01)) "weighted estimate" 0.38 weighted

let test_forward_sample_root () =
  let bn = Bn.create () in
  let a = Bn.add bn ~name:"a" ~parents:[||] (Bn.Table [| 1.0 |]) in
  let values = Infer.forward_sample ~rng:(rng 5) bn in
  Alcotest.(check bool) "certain root" true values.(a)

(* -------------------------------------------------------------- mfactor *)

let test_mfactor_of_fun () =
  let f =
    Mfactor.of_fun ~vars:[| (2, 3); (0, 2) |] (fun v ->
        float_of_int ((10 * v.(0)) + v.(1)))
  in
  (* sorted: var 0 (card 2) first, then var 2 (card 3); the tabulated
     function receives values in sorted order *)
  Alcotest.(check bool) "sorted" true (Mfactor.vars f = [| (0, 2); (2, 3) |]);
  check_float "lookup" 12.0 (Mfactor.value f [ (0, 1); (2, 2) ]);
  check_float "lookup2" 10.0 (Mfactor.value f [ (0, 1); (2, 0) ])

let test_mfactor_product_sum () =
  let a = Mfactor.of_fun ~vars:[| (0, 2) |] (fun v -> if v.(0) = 0 then 0.25 else 0.75) in
  let b =
    Mfactor.of_fun ~vars:[| (0, 2); (1, 3) |] (fun v ->
        float_of_int (v.(0) + v.(1)))
  in
  let p = Mfactor.product a b in
  check_float "product entry" (0.75 *. 3.0)
    (Mfactor.value p [ (0, 1); (1, 2) ]);
  let m = Mfactor.sum_out p 1 in
  (* sum over v1 of (v0 + v1) weighted: v0=1: 0.75*(1+2+3)=4.5 *)
  check_float "sum_out" 4.5 (Mfactor.value m [ (0, 1) ]);
  check_float "total preserved" (Mfactor.total p) (Mfactor.total m);
  (* restrict *)
  let r = Mfactor.restrict p 1 2 in
  check_float "restricted" (0.25 *. 2.0) (Mfactor.value r [ (0, 0) ])

let test_mfactor_validation () =
  (match Mfactor.of_fun ~vars:[| (0, 2); (0, 3) |] (fun _ -> 0.0) with
  | _ -> Alcotest.fail "accepted duplicate"
  | exception Invalid_argument _ -> ());
  (match Mfactor.of_fun ~vars:[| (0, 0) |] (fun _ -> 0.0) with
  | _ -> Alcotest.fail "accepted card 0"
  | exception Invalid_argument _ -> ());
  let a = Mfactor.of_fun ~vars:[| (0, 2) |] (fun _ -> 1.0) in
  let b = Mfactor.of_fun ~vars:[| (0, 3) |] (fun _ -> 1.0) in
  match Mfactor.product a b with
  | _ -> Alcotest.fail "accepted cardinality mismatch"
  | exception Invalid_argument _ -> ()

let test_mfactor_boolean_agrees () =
  (* the multi-valued machinery restricted to card 2 must agree with the
     boolean Factor module *)
  let f_bool = Factor.of_fun ~vars:[| 0; 1 |] (fun v ->
      (if v.(0) then 2.0 else 1.0) *. if v.(1) then 5.0 else 3.0) in
  let f_multi = Mfactor.of_fun ~vars:[| (0, 2); (1, 2) |] (fun v ->
      (if v.(0) = 1 then 2.0 else 1.0) *. if v.(1) = 1 then 5.0 else 3.0) in
  List.iter
    (fun (x, y) ->
      check_float "agree"
        (Factor.value f_bool [ (0, x = 1); (1, y = 1) ])
        (Mfactor.value f_multi [ (0, x); (1, y) ]))
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]

let test_mfactor_algebra () =
  (* summing out every variable yields the grand total; multiplying by
     the unit constant changes nothing *)
  let rng = rng 900 in
  for _ = 1 to 20 do
    let vars =
      [| (0, 1 + Random.State.int rng 3); (3, 1 + Random.State.int rng 3);
         (7, 1 + Random.State.int rng 2) |]
    in
    let f = Mfactor.of_fun ~vars (fun _ -> Random.State.float rng 5.0) in
    let collapsed =
      Array.fold_left (fun acc (v, _) -> Mfactor.sum_out acc v) f vars
    in
    check_float "collapse = total" (Mfactor.total f)
      (Mfactor.value collapsed []);
    let unit = Mfactor.product f (Mfactor.constant 1.0) in
    Alcotest.(check bool) "unit identity" true
      (Mfactor.equal ~eps:1e-12 f unit);
    (* sum_out in either order agrees *)
    let ab = Mfactor.sum_out (Mfactor.sum_out f 0) 3 in
    let ba = Mfactor.sum_out (Mfactor.sum_out f 3) 0 in
    Alcotest.(check bool) "sum_out commutes" true
      (Mfactor.equal ~eps:1e-9 ab ba);
    (* restriction picks the right slice: summing restrictions over every
       value of a variable equals summing the variable out *)
    let card0 = snd vars.(0) in
    let summed = Mfactor.sum_out f 0 in
    let stitched =
      List.init card0 (fun v -> Mfactor.restrict f 0 v)
      |> List.fold_left
           (fun acc slice ->
             match acc with
             | None -> Some slice
             | Some acc ->
                 Some
                   (Mfactor.of_fun ~vars:(Mfactor.vars acc) (fun values ->
                        let assignment =
                          Array.to_list
                            (Array.mapi
                               (fun i (id, _) ->
                                 (id, values.(i)))
                               (Mfactor.vars acc))
                        in
                        Mfactor.value acc assignment
                        +. Mfactor.value slice assignment)))
           None
      |> Option.get
    in
    Alcotest.(check bool) "restrictions stitch to sum_out" true
      (Mfactor.equal ~eps:1e-9 summed stitched)
  done

(* ------------------------------------------------------------------ dbn *)

let test_dbn_basic () =
  let bn = Dbn.create () in
  let die =
    Dbn.add bn ~name:"die" ~card:3 ~parents:[||] (fun _ k ->
        [| 0.5; 0.3; 0.2 |].(k))
  in
  let flag =
    Dbn.add bn ~name:"flag" ~card:2 ~parents:[| die |] (fun pv k ->
        let p_true = float_of_int pv.(0) /. 4.0 in
        if k = 1 then p_true else 1.0 -. p_true)
  in
  Alcotest.(check int) "cards" 3 (Dbn.card bn die);
  check_float "prior" 0.3 (Dbn.prob bn die [||] 1);
  (* P(flag) = 0.5*0 + 0.3*0.25 + 0.2*0.5 = 0.175 *)
  check_float "marginal" 0.175 (Dbn.marginal bn flag).(1);
  Alcotest.(check (array (float 1e-9))) "brute agrees"
    (Dbn.brute_marginal bn flag)
    (Dbn.marginal bn flag);
  (* diagnostic direction *)
  let d_given_flag = Dbn.marginal ~evidence:[ (flag, 1) ] bn die in
  check_float "P(die=2|flag)" (0.2 *. 0.5 /. 0.175) d_given_flag.(2)

let test_dbn_validation () =
  let bn = Dbn.create () in
  (match Dbn.add bn ~name:"x" ~card:2 ~parents:[||] (fun _ _ -> 0.4) with
  | _ -> Alcotest.fail "accepted row sum 0.8"
  | exception Invalid_argument _ -> ());
  match Dbn.add bn ~name:"x" ~card:0 ~parents:[||] (fun _ _ -> 1.0) with
  | _ -> Alcotest.fail "accepted card 0"
  | exception Invalid_argument _ -> ()

let random_dbn rng n =
  let bn = Dbn.create () in
  for i = 0 to n - 1 do
    let card = 2 + Random.State.int rng 2 in
    let parents =
      List.init i Fun.id
      |> List.filter (fun _ -> Random.State.float rng 1.0 < 0.4)
      |> Array.of_list
    in
    (* a dense random CPD, normalized per row *)
    let rows = Hashtbl.create 8 in
    ignore
      (Dbn.add bn ~name:(string_of_int i) ~card ~parents (fun pv k ->
           let key = Array.to_list pv in
           let row =
             match Hashtbl.find_opt rows key with
             | Some row -> row
             | None ->
                 let raw =
                   Array.init card (fun _ ->
                       0.05 +. Random.State.float rng 1.0)
                 in
                 let z = Array.fold_left ( +. ) 0.0 raw in
                 let row = Array.map (fun x -> x /. z) raw in
                 Hashtbl.add rows key row;
                 row
           in
           row.(k)))
  done;
  bn

let test_dbn_ve_vs_brute () =
  for seed = 1 to 10 do
    let bn = random_dbn (rng (400 + seed)) 6 in
    let q = Dbn.n_nodes bn - 1 in
    Alcotest.(check (array (float 1e-9)))
      (Printf.sprintf "seed %d" seed)
      (Dbn.brute_marginal bn q) (Dbn.marginal bn q)
  done

let test_dbn_ve_vs_brute_evidence () =
  for seed = 1 to 10 do
    let bn = random_dbn (rng (500 + seed)) 6 in
    let evidence = [ (0, 1); (2, 0) ] in
    Alcotest.(check (array (float 1e-9)))
      (Printf.sprintf "seed %d" seed)
      (Dbn.brute_marginal ~evidence bn 5)
      (Dbn.marginal ~evidence bn 5)
  done

let test_dbn_sampling () =
  let bn = Dbn.create () in
  let die =
    Dbn.add bn ~name:"die" ~card:3 ~parents:[||] (fun _ k ->
        [| 0.5; 0.3; 0.2 |].(k))
  in
  let rng = rng 77 in
  let counts = Array.make 3 0 in
  let samples = 50_000 in
  for _ = 1 to samples do
    let v = Dbn.sample ~rng bn in
    counts.(v.(die)) <- counts.(v.(die)) + 1
  done;
  Array.iteri
    (fun k expected ->
      Alcotest.(check (float 0.01))
        (Printf.sprintf "state %d" k)
        expected
        (float_of_int counts.(k) /. float_of_int samples))
    [| 0.5; 0.3; 0.2 |]

(* ------------------------------------------------------------ attack bn *)

(* tiny diversified network: line of 3 hosts, one service, two products
   with similarity 0.5 *)
let line_net () =
  let services =
    [| { Network.sv_name = "os"; sv_products = [| "A"; "B" |];
         sv_similarity = [| 1.0; 0.5; 0.5; 1.0 |] } |]
  in
  Network.create ~graph:(Gen.line 3) ~services
    ~hosts:
      (Array.init 3 (fun h ->
           { Network.h_name = Printf.sprintf "h%d" h;
             h_services = [ (0, [||]) ] }))

let test_edge_rate () =
  let net = line_net () in
  let alternating =
    Assignment.make net (fun ~host ~service:_ -> host mod 2)
  in
  Alcotest.(check (float 1e-9)) "uniform = scaled sim" (0.3 *. 0.5)
    (Attack_bn.edge_rate ~base_rate:0.3 ~sim_floor:0.0 alternating
       ~model:Attack_bn.Uniform_choice 0 1);
  Alcotest.(check (float 1e-9)) "fixed ignores products" 0.07
    (Attack_bn.edge_rate alternating ~model:(Attack_bn.Fixed 0.07) 0 1);
  let same = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  Alcotest.(check (float 1e-9)) "identical products" 0.3
    (Attack_bn.edge_rate ~base_rate:0.3 ~sim_floor:0.0 same
       ~model:Attack_bn.Best_choice 0 1)

let test_p_compromise_line () =
  let net = line_net () in
  let same = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  (* entry h0, target h2: rate q per hop, two hops -> q^2 *)
  let q = 0.3 in
  let p =
    Attack_bn.p_compromise ~base_rate:q ~sim_floor:0.0 same ~entry:0
      ~target:2 ~model:Attack_bn.Uniform_choice
  in
  check_float "two-hop chain" (q *. q) p;
  (* diversification halves each hop *)
  let alt = Assignment.make net (fun ~host ~service:_ -> host mod 2) in
  let p' =
    Attack_bn.p_compromise ~base_rate:q ~sim_floor:0.0 alt ~entry:0 ~target:2
      ~model:Attack_bn.Uniform_choice
  in
  check_float "diversified chain" (q *. 0.5 *. (q *. 0.5)) p'

let test_p_compromise_unreachable () =
  let services =
    [| { Network.sv_name = "os"; sv_products = [| "A" |];
         sv_similarity = [| 1.0 |] } |]
  in
  let graph = Netdiv_graph.Graph.of_edges ~n:3 [ (0, 1) ] in
  let net =
    Network.create ~graph ~services
      ~hosts:
        (Array.init 3 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  let a = Assignment.first_candidate net in
  check_float "unreachable target" 0.0
    (Attack_bn.p_compromise a ~entry:0 ~target:2
       ~model:Attack_bn.Uniform_choice)

let test_entry_is_target () =
  let net = line_net () in
  let a = Assignment.first_candidate net in
  check_float "entry itself" 1.0
    (Attack_bn.p_compromise a ~entry:0 ~target:0
       ~model:Attack_bn.Uniform_choice)

let test_explicit_matches_marginalized () =
  (* the Section-VI construction with explicit attacker-choice nodes must
     agree with the noisy-OR marginalization, on every model *)
  let check_net net assignment =
    List.iter
      (fun model ->
        let p1 =
          Attack_bn.p_compromise assignment ~entry:0 ~target:2 ~model
        in
        let p2 =
          Attack_bn.p_compromise_explicit assignment ~entry:0 ~target:2
            ~model
        in
        check_float "explicit = marginalized" p1 p2)
      [ Attack_bn.Uniform_choice; Attack_bn.Best_choice;
        Attack_bn.Fixed 0.065 ];
    ignore net
  in
  let net = line_net () in
  check_net net (Assignment.make net (fun ~host ~service:_ -> host mod 2));
  check_net net (Assignment.make net (fun ~host:_ ~service:_ -> 0));
  (* and on a diamond with converging attack paths *)
  let services =
    [| { Network.sv_name = "os"; sv_products = [| "A"; "B" |];
         sv_similarity = [| 1.0; 0.4; 0.4; 1.0 |] } |]
  in
  let graph =
    Netdiv_graph.Graph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in
  let diamond =
    Network.create ~graph ~services
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  let a = Assignment.make diamond (fun ~host ~service:_ -> host mod 2) in
  List.iter
    (fun model ->
      check_float "diamond"
        (Attack_bn.p_compromise a ~entry:0 ~target:3 ~model)
        (Attack_bn.p_compromise_explicit a ~entry:0 ~target:3 ~model))
    [ Attack_bn.Uniform_choice; Attack_bn.Best_choice; Attack_bn.Fixed 0.1 ]

let test_explicit_case_study () =
  let net = Netdiv_casestudy.Products.network () in
  let a = Netdiv_casestudy.Experiments.compute_assignments net in
  let entry = Netdiv_casestudy.Topology.host "c4" in
  let target = Netdiv_casestudy.Topology.host "t5" in
  let assignment = a.Netdiv_casestudy.Experiments.optimal in
  check_float "case study agreement"
    (Attack_bn.p_compromise assignment ~entry ~target
       ~model:Attack_bn.Uniform_choice)
    (Attack_bn.p_compromise_explicit assignment ~entry ~target
       ~model:Attack_bn.Uniform_choice)

let test_host_marginals () =
  let net = line_net () in
  let a = Assignment.make net (fun ~host ~service:_ -> host mod 2) in
  let marginals =
    Attack_bn.host_marginals ~samples:60_000 ~rng:(rng 8) a ~entry:0
      ~model:Attack_bn.Uniform_choice
  in
  Alcotest.(check int) "one row per host" 3 (Array.length marginals);
  Alcotest.(check (float 1e-9)) "entry certain" 1.0 (snd marginals.(0));
  (* chain: risk decays with distance *)
  Alcotest.(check bool) "monotone decay" true
    (snd marginals.(1) > snd marginals.(2));
  (* agrees with the exact per-host probability within sampling noise *)
  let exact =
    Attack_bn.p_compromise a ~entry:0 ~target:2
      ~model:Attack_bn.Uniform_choice
  in
  Alcotest.(check (float 0.01)) "matches exact" exact (snd marginals.(2))

let test_host_marginals_unreachable () =
  let services =
    [| { Network.sv_name = "os"; sv_products = [| "A" |];
         sv_similarity = [| 1.0 |] } |]
  in
  let graph = Netdiv_graph.Graph.of_edges ~n:3 [ (0, 1) ] in
  let net =
    Network.create ~graph ~services
      ~hosts:
        (Array.init 3 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  let a = Assignment.first_candidate net in
  let marginals =
    Attack_bn.host_marginals ~samples:1000 a ~entry:0
      ~model:Attack_bn.Uniform_choice
  in
  Alcotest.(check (float 1e-9)) "island scores zero" 0.0 (snd marginals.(2))

let test_diversity_metric_orders () =
  let net = line_net () in
  let same = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  let alt = Assignment.make net (fun ~host ~service:_ -> host mod 2) in
  let d_same = Attack_bn.diversity same ~entry:0 ~target:2 in
  let d_alt = Attack_bn.diversity alt ~entry:0 ~target:2 in
  Alcotest.(check bool) "diversified scores higher" true (d_alt > d_same);
  Alcotest.(check bool) "mono is positive" true (d_same > 0.0)

(* ------------------------------------------------------------- property *)

let bn_gen =
  QCheck2.Gen.(
    let* seed = 0 -- 100_000 in
    let* n = 2 -- 8 in
    return (random_dag_bn (Random.State.make [| seed |]) n))

let prop_exact_matches_brute =
  QCheck2.Test.make ~count:50 ~name:"variable elimination = joint sum"
    bn_gen (fun bn ->
      let q = Bn.n_nodes bn - 1 in
      abs_float (Infer.exact_marginal bn q -. Infer.joint_brute_force bn q)
      < 1e-9)

let prop_marginals_are_probabilities =
  QCheck2.Test.make ~count:50 ~name:"marginals lie in [0,1]" bn_gen
    (fun bn ->
      let ok = ref true in
      for q = 0 to Bn.n_nodes bn - 1 do
        let p = Infer.exact_marginal bn q in
        if not (p >= 0.0 && p <= 1.0) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "bayes"
    [
      ( "factor",
        [
          Alcotest.test_case "of_fun ordering" `Quick test_factor_of_fun;
          Alcotest.test_case "product" `Quick test_factor_product;
          Alcotest.test_case "sum_out" `Quick test_factor_sum_out;
          Alcotest.test_case "restrict" `Quick test_factor_restrict;
          Alcotest.test_case "validation" `Quick test_factor_validation;
        ] );
      ( "bn",
        [
          Alcotest.test_case "build" `Quick test_bn_build;
          Alcotest.test_case "validation" `Quick test_bn_validation;
          Alcotest.test_case "noisy-or" `Quick test_noisy_or;
        ] );
      ( "infer",
        [
          Alcotest.test_case "exact on a chain" `Quick test_exact_chain;
          Alcotest.test_case "exact with evidence" `Quick
            test_exact_with_evidence;
          Alcotest.test_case "exact vs brute force" `Quick
            test_exact_vs_brute;
          Alcotest.test_case "exact vs brute with evidence" `Quick
            test_exact_vs_brute_evidence;
          Alcotest.test_case "sampling converges" `Quick
            test_sampling_converges;
          Alcotest.test_case "forward sample" `Quick
            test_forward_sample_root;
        ] );
      ( "mfactor",
        [
          Alcotest.test_case "of_fun ordering" `Quick test_mfactor_of_fun;
          Alcotest.test_case "product and sum_out" `Quick
            test_mfactor_product_sum;
          Alcotest.test_case "validation" `Quick test_mfactor_validation;
          Alcotest.test_case "boolean special case" `Quick
            test_mfactor_boolean_agrees;
          Alcotest.test_case "algebraic laws" `Quick test_mfactor_algebra;
        ] );
      ( "dbn",
        [
          Alcotest.test_case "basics" `Quick test_dbn_basic;
          Alcotest.test_case "validation" `Quick test_dbn_validation;
          Alcotest.test_case "VE vs brute force" `Quick test_dbn_ve_vs_brute;
          Alcotest.test_case "VE vs brute with evidence" `Quick
            test_dbn_ve_vs_brute_evidence;
          Alcotest.test_case "sampling" `Quick test_dbn_sampling;
        ] );
      ( "attack",
        [
          Alcotest.test_case "edge rates" `Quick test_edge_rate;
          Alcotest.test_case "line-network probability" `Quick
            test_p_compromise_line;
          Alcotest.test_case "unreachable target" `Quick
            test_p_compromise_unreachable;
          Alcotest.test_case "entry is target" `Quick test_entry_is_target;
          Alcotest.test_case "diversity metric ordering" `Quick
            test_diversity_metric_orders;
          Alcotest.test_case "explicit BN matches marginalized" `Quick
            test_explicit_matches_marginalized;
          Alcotest.test_case "explicit BN on the case study" `Quick
            test_explicit_case_study;
          Alcotest.test_case "host marginals" `Quick test_host_marginals;
          Alcotest.test_case "host marginals unreachable" `Quick
            test_host_marginals_unreachable;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_exact_matches_brute;
          QCheck_alcotest.to_alcotest prop_marginals_are_probabilities;
        ] );
    ]
