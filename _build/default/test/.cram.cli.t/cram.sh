  $ netdiv similarity --corpus os
  $ netdiv similarity --corpus database --synthesize
  $ netdiv similarity --corpus nope
  $ netdiv metrics
  $ netdiv rank --samples 4000 --top 5
  $ netdiv export --network n.json --assignment a.json
  $ netdiv verify --network n.json --assignment a.json
