  $ netdiv similarity --corpus os
  $ netdiv similarity --corpus database --synthesize
  $ netdiv similarity --corpus nope
  $ netdiv metrics
  $ netdiv rank --samples 4000 --top 5
  $ netdiv export --network n.json --assignment a.json
  $ netdiv verify --network n.json --assignment a.json
  $ netdiv optimize --hosts 800 --time-budget 0.01 | grep -E "^(solver|outcome)"
  $ netdiv optimize --hosts 40 --time-budget 60 | grep -E "^(solver|outcome)"
  $ netdiv optimize --hosts 40 --solver sa --time-budget 60 | grep -E "^(solver|outcome)"
