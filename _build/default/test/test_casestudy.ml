(* Tests for the Stuxnet-inspired case study: the Fig. 3 topology, Table IV
   candidate catalogs, and the Section VII experiments (Tables V and VI
   orderings). *)

open Netdiv_casestudy
module Graph = Netdiv_graph.Graph
module Traversal = Netdiv_graph.Traversal
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Constr = Netdiv_core.Constr

let net = Products.network ()
let assignments = Experiments.compute_assignments net

(* --------------------------------------------------------------- topology *)

let test_host_numbering () =
  Alcotest.(check int) "32 hosts" 32 (Array.length Topology.host_names);
  Alcotest.(check int) "c1 first" 0 (Topology.host "c1");
  Alcotest.(check string) "t5 target" "t5" Topology.target;
  match Topology.host "nope" with
  | _ -> Alcotest.fail "accepted unknown host"
  | exception Invalid_argument _ -> ()

let test_graph_shape () =
  let g = Topology.graph () in
  Alcotest.(check int) "node count" 32 (Graph.n_nodes g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* zone meshes *)
  Alcotest.(check bool) "corporate mesh" true
    (Graph.mem_edge g (Topology.host "c1") (Topology.host "c3"));
  (* firewall white-list links *)
  Alcotest.(check bool) "c4-z4" true
    (Graph.mem_edge g (Topology.host "c4") (Topology.host "z4"));
  Alcotest.(check bool) "z4-t1" true
    (Graph.mem_edge g (Topology.host "z4") (Topology.host "t1"));
  Alcotest.(check bool) "p1-v1" true
    (Graph.mem_edge g (Topology.host "p1") (Topology.host "v1"));
  (* and the absence of non-whitelisted links *)
  Alcotest.(check bool) "no c1-t5" false
    (Graph.mem_edge g (Topology.host "c1") (Topology.host "t5"));
  Alcotest.(check bool) "no c1-z4" false
    (Graph.mem_edge g (Topology.host "c1") (Topology.host "z4"))

let test_attack_path_exists () =
  let g = Topology.graph () in
  (* Stuxnet's route: corporate entry to the WinCC server *)
  match
    Traversal.shortest_path g (Topology.host "c4") (Topology.host "t5")
  with
  | Some path -> Alcotest.(check int) "3 hops via z4" 4 (List.length path)
  | None -> Alcotest.fail "target unreachable"

let test_field_devices_behind_control () =
  let g = Topology.graph () in
  let dist = Traversal.bfs g (Topology.host "c4") in
  Alcotest.(check bool) "PLCs farther than servers" true
    (dist.(Topology.host "f1") > dist.(Topology.host "t5"))

(* --------------------------------------------------------------- products *)

let test_network_catalog () =
  Alcotest.(check int) "3 services" 3 (Network.n_services net);
  Alcotest.(check int) "4 OS products" 4 (Network.n_products net 0);
  Alcotest.(check int) "3 browsers" 3 (Network.n_products net 1);
  Alcotest.(check int) "4 databases" 4 (Network.n_products net 2)

let test_similarities_from_paper () =
  (* Win XP / Win 7 similarity survives the restriction: 328 shared *)
  Alcotest.(check (float 1e-3)) "XP/7" 0.278
    (Network.similarity net ~service:0 0 1);
  Alcotest.(check (float 1e-3)) "IE8/IE10" 0.386
    (Network.similarity net ~service:1 0 1);
  Alcotest.(check (float 1e-9)) "XP/Ubuntu zero"
    0.0
    (Network.similarity net ~service:0 0 2)

let test_legacy_hosts_frozen () =
  List.iter
    (fun h ->
      let host = Topology.host h in
      Alcotest.(check int) (h ^ " OS frozen") 1
        (Array.length (Network.candidates net ~host ~service:0)))
    [ "p2"; "p3"; "t3"; "t5"; "t6" ];
  (* and the WinCC compatibility constraint: only Windows on c1 *)
  Alcotest.(check (array int)) "c1 windows only" [| 0; 1 |]
    (Network.candidates net ~host:(Topology.host "c1") ~service:0)

let test_plcs_have_no_services () =
  List.iter
    (fun h ->
      Alcotest.(check int) (h ^ " no services") 0
        (Array.length (Network.host_services net (Topology.host h))))
    [ "f1"; "f2"; "f3" ]

let test_constraints_valid () =
  Alcotest.(check bool) "C1 valid" true
    (Constr.validate_all net (Products.host_constraints net) = Ok ());
  Alcotest.(check bool) "C2 valid" true
    (Constr.validate_all net (Products.product_constraints net) = Ok ())

(* ------------------------------------------------------------ experiments *)

let test_assignments_respect_constraints () =
  let c1 = Products.host_constraints net in
  let c2 = Products.product_constraints net in
  Alcotest.(check int) "optimal valid under none" 0
    (List.length (Constr.violations net assignments.Experiments.optimal []));
  Alcotest.(check int) "host-constrained valid" 0
    (List.length
       (Constr.violations net assignments.Experiments.host_constrained c1));
  Alcotest.(check int) "product-constrained valid" 0
    (List.length
       (Constr.violations net assignments.Experiments.product_constrained c2))

let test_c2_fixes_ie_on_linux () =
  (* under C2 no host may combine a Linux OS with Internet Explorer *)
  let a = assignments.Experiments.product_constrained in
  for h = 0 to Network.n_hosts net - 1 do
    match
      ( Assignment.get_opt a ~host:h ~service:0,
        Assignment.get_opt a ~host:h ~service:1 )
    with
    | Some os, Some wb when os >= 2 ->
        Alcotest.(check bool)
          (Network.host_name net h ^ " browser on linux")
          true (wb = 2)
    | _ -> ()
  done

let test_optimal_diversity_dominates () =
  let e = Netdiv_core.Encode.encode net [] in
  let energy a = Netdiv_core.Encode.assignment_energy e a in
  Alcotest.(check bool) "optimal <= host-constrained" true
    (energy assignments.Experiments.optimal
     <= energy assignments.Experiments.host_constrained +. 1e-9);
  Alcotest.(check bool) "host-constrained <= mono" true
    (energy assignments.Experiments.host_constrained
     <= energy assignments.Experiments.mono +. 1e-9);
  Alcotest.(check bool) "optimal <= random" true
    (energy assignments.Experiments.optimal
     <= energy assignments.Experiments.random +. 1e-9)

let test_diversity_table_ordering () =
  (* Table V: d_bn(optimal) > d_bn(constrained) > d_bn(random) > d_bn(mono) *)
  let rows = Experiments.diversity_table assignments in
  let get label =
    (List.find (fun (r : Experiments.diversity_row) -> r.label = label) rows)
      .d_bn
  in
  let optimal = get "optimal" in
  let host_c = get "host-constr" in
  let product_c = get "product-constr" in
  let random = get "random" in
  let mono = get "mono" in
  Alcotest.(check bool) "optimal best" true
    (optimal > host_c && optimal > product_c);
  Alcotest.(check bool) "constrained beat random" true
    (host_c > random && product_c > random);
  Alcotest.(check bool) "random beats mono" true (random > mono);
  Alcotest.(check bool) "metric below 1" true (optimal <= 1.0);
  (* P' is an assignment-independent reference (same first column in
     Table V) *)
  List.iter
    (fun (r : Experiments.diversity_row) ->
      Alcotest.(check (float 1e-9)) "constant reference"
        (List.hd rows).log_p_ref r.log_p_ref)
    rows

let test_mttc_table_ordering () =
  (* Table VI with a reduced run count: the optimal deployment resists
     longest, the mono deployment falls fastest, from every entry *)
  let rows = Experiments.mttc_table ~runs:150 assignments in
  let find label =
    (List.find (fun (r : Experiments.mttc_row) -> r.label = label) rows)
      .per_entry
  in
  let optimal = find "optimal" and mono = find "mono" in
  List.iter
    (fun (entry, (stats : Netdiv_sim.Engine.mttc_stats)) ->
      let mono_stats = List.assoc entry mono in
      Alcotest.(check bool)
        (Printf.sprintf "optimal outlasts mono from %s" entry)
        true
        (stats.mean_ticks > mono_stats.Netdiv_sim.Engine.mean_ticks);
      Alcotest.(check bool) "every run reaches the target" true
        (stats.successes = stats.runs))
    optimal

let test_deterministic_experiments () =
  let a1 = Experiments.compute_assignments ~seed:5 net in
  let a2 = Experiments.compute_assignments ~seed:5 net in
  Alcotest.(check bool) "same random baseline" true
    (Assignment.equal a1.Experiments.random a2.Experiments.random);
  Alcotest.(check bool) "same optimal" true
    (Assignment.equal a1.Experiments.optimal a2.Experiments.optimal)

let test_weighted_network () =
  let weighted = Products.network_weighted () in
  Alcotest.(check int) "same hosts" (Network.n_hosts net)
    (Network.n_hosts weighted);
  Alcotest.(check int) "same services" 3 (Network.n_services weighted);
  (* weighted similarities stay within bounds and zeros stay zero *)
  let differs = ref false in
  for s = 0 to 2 do
    let p = Network.n_products net s in
    for i = 0 to p - 1 do
      for j = 0 to p - 1 do
        let plain = Network.similarity net ~service:s i j in
        let w = Network.similarity weighted ~service:s i j in
        Alcotest.(check bool) "bounds" true (w >= 0.0 && w <= 1.0);
        if plain = 0.0 then
          Alcotest.(check (float 1e-12)) "zero stays zero" 0.0 w
        else if abs_float (plain -. w) > 1e-6 then differs := true
      done
    done
  done;
  Alcotest.(check bool) "severity weighting moves some cells" true !differs;
  (* the weighted network still optimizes cleanly *)
  let r = Netdiv_core.Optimize.run weighted [] in
  Alcotest.(check bool) "optimizes" true r.Netdiv_core.Optimize.constraints_ok

(* --------------------------------------------------------------- scaled *)

let test_scaled_structure () =
  let s = Scaled.generate ~scale:3 () in
  let net = s.Scaled.network in
  Alcotest.(check int) "3x hosts" 96 (Network.n_hosts net);
  Alcotest.(check bool) "connected" true
    (Netdiv_graph.Traversal.is_connected (Network.graph net));
  (* the target is a WinCC-server role: frozen Win7 + MSSQL14 *)
  Alcotest.(check (array int)) "target os frozen" [| 1 |]
    (Network.candidates net ~host:s.Scaled.target ~service:0);
  (* zone map covers all hosts *)
  Alcotest.(check int) "zones" 8 (Array.length s.Scaled.zone_names);
  Array.iter
    (fun z -> Alcotest.(check bool) "zone in range" true (z >= 0 && z < 8))
    s.Scaled.zone_of;
  (* entries live in their zones *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "entry valid" true
        (e >= 0 && e < Network.n_hosts net))
    s.Scaled.entries

let test_scaled_deterministic () =
  let a = Scaled.generate ~seed:9 ~scale:2 () in
  let b = Scaled.generate ~seed:9 ~scale:2 () in
  Alcotest.(check bool) "same graphs" true
    (Netdiv_graph.Graph.edges (Network.graph a.Scaled.network)
    = Netdiv_graph.Graph.edges (Network.graph b.Scaled.network))

let test_scaled_optimizes () =
  let s = Scaled.generate ~scale:4 () in
  let r = Netdiv_core.Optimize.run s.Scaled.network [] in
  Alcotest.(check bool) "constraints ok" true
    r.Netdiv_core.Optimize.constraints_ok;
  (* realistic instances have tight duality gaps *)
  Alcotest.(check bool) "gap below 20%" true
    (r.Netdiv_core.Optimize.energy
    < 1.2 *. r.Netdiv_core.Optimize.lower_bound);
  let mono = Assignment.mono s.Scaled.network in
  let e = Netdiv_core.Encode.encode s.Scaled.network [] in
  Alcotest.(check bool) "beats mono" true
    (r.Netdiv_core.Optimize.energy
    < Netdiv_core.Encode.assignment_energy e mono)

let test_scaled_invalid () =
  match Scaled.generate ~scale:0 () with
  | _ -> Alcotest.fail "accepted scale 0"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "casestudy"
    [
      ( "topology",
        [
          Alcotest.test_case "host numbering" `Quick test_host_numbering;
          Alcotest.test_case "graph shape" `Quick test_graph_shape;
          Alcotest.test_case "attack path c4->t5" `Quick
            test_attack_path_exists;
          Alcotest.test_case "field devices behind control" `Quick
            test_field_devices_behind_control;
        ] );
      ( "products",
        [
          Alcotest.test_case "catalog" `Quick test_network_catalog;
          Alcotest.test_case "similarities from the paper" `Quick
            test_similarities_from_paper;
          Alcotest.test_case "legacy hosts frozen" `Quick
            test_legacy_hosts_frozen;
          Alcotest.test_case "PLCs inert" `Quick test_plcs_have_no_services;
          Alcotest.test_case "constraint sets valid" `Quick
            test_constraints_valid;
          Alcotest.test_case "weighted similarity variant" `Quick
            test_weighted_network;
        ] );
      ( "scaled",
        [
          Alcotest.test_case "structure" `Quick test_scaled_structure;
          Alcotest.test_case "deterministic" `Quick test_scaled_deterministic;
          Alcotest.test_case "optimizes" `Quick test_scaled_optimizes;
          Alcotest.test_case "invalid scale" `Quick test_scaled_invalid;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "assignments respect constraints" `Quick
            test_assignments_respect_constraints;
          Alcotest.test_case "C2 removes IE-on-Linux" `Quick
            test_c2_fixes_ie_on_linux;
          Alcotest.test_case "optimal energy dominates" `Quick
            test_optimal_diversity_dominates;
          Alcotest.test_case "Table V ordering" `Quick
            test_diversity_table_ordering;
          Alcotest.test_case "Table VI ordering" `Slow
            test_mttc_table_ordering;
          Alcotest.test_case "deterministic" `Quick
            test_deterministic_experiments;
        ] );
    ]
