(* Tests for the random-instance generator behind the scalability study. *)

open Netdiv_workload.Workload
module Network = Netdiv_core.Network
module Graph = Netdiv_graph.Graph
module Traversal = Netdiv_graph.Traversal

let test_default_shape () =
  let net = instance default in
  Alcotest.(check int) "hosts" 1000 (Network.n_hosts net);
  Alcotest.(check int) "services" 15 (Network.n_services net);
  Alcotest.(check int) "edges = n*deg/2" 10_000
    (Graph.n_edges (Network.graph net));
  Alcotest.(check int) "products" 4 (Network.n_products net 0);
  Alcotest.(check int) "slots" 15_000 (Array.length (Network.slots net))

let test_deterministic () =
  let p = { default with hosts = 100; services = 3; seed = 9 } in
  let a = instance p and b = instance p in
  Alcotest.(check bool) "same graphs" true
    (Graph.edges (Network.graph a) = Graph.edges (Network.graph b));
  Alcotest.(check (float 1e-12)) "same similarities"
    (Network.similarity a ~service:1 0 3)
    (Network.similarity b ~service:1 0 3)

let test_connected () =
  let net = instance { default with hosts = 500; degree = 4 } in
  Alcotest.(check bool) "connected" true
    (Traversal.is_connected (Network.graph net))

let test_invalid_params () =
  match instance { default with hosts = 0 } with
  | _ -> Alcotest.fail "accepted zero hosts"
  | exception Invalid_argument _ -> ()

let test_synthetic_similarity_valid () =
  let rng = Random.State.make [| 4 |] in
  for products = 1 to 8 do
    let m = synthetic_similarity ~rng ~products in
    Alcotest.(check int) "size" (products * products) (Array.length m);
    for i = 0 to products - 1 do
      Alcotest.(check (float 1e-12)) "diag" 1.0 m.((i * products) + i);
      for j = 0 to products - 1 do
        let v = m.((i * products) + j) in
        Alcotest.(check bool) "bounds" true (v >= 0.0 && v <= 1.0);
        Alcotest.(check (float 1e-12)) "symmetric" v m.((j * products) + i)
      done
    done
  done

let test_cross_family_zero () =
  let rng = Random.State.make [| 5 |] in
  let products = 6 in
  let m = synthetic_similarity ~rng ~products in
  (* families are [0..2] and [3..5] *)
  for i = 0 to 2 do
    for j = 3 to 5 do
      Alcotest.(check (float 1e-12)) "cross family" 0.0
        m.((i * products) + j)
    done
  done

let test_optimizable () =
  (* the whole point: the optimizer runs on generated instances and beats
     the homogeneous baseline *)
  let net =
    instance { hosts = 60; degree = 6; services = 3;
               products_per_service = 4; seed = 3 }
  in
  let report = Netdiv_core.Optimize.run net [] in
  Alcotest.(check bool) "constraints ok" true
    report.Netdiv_core.Optimize.constraints_ok;
  let e = Netdiv_core.Encode.encode net [] in
  let mono_energy =
    Netdiv_core.Encode.assignment_energy e (Netdiv_core.Assignment.mono net)
  in
  Alcotest.(check bool) "beats mono" true
    (report.Netdiv_core.Optimize.energy < mono_energy)

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "default shape" `Quick test_default_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
          Alcotest.test_case "synthetic similarity valid" `Quick
            test_synthetic_similarity_valid;
          Alcotest.test_case "cross-family zero" `Quick
            test_cross_family_zero;
          Alcotest.test_case "optimizable" `Quick test_optimizable;
        ] );
    ]
