(* Tests for the diversification core: network model, assignments,
   constraints, MRF encoding and the optimizer. *)

open Netdiv_core
module Graph = Netdiv_graph.Graph
module Gen = Netdiv_graph.Gen

let rng seed = Random.State.make [| seed |]

(* a small two-service network over a given graph; service 0 has 3
   products (identity-ish similarity), service 1 has 2 *)
let sim3 =
  [| 1.0; 0.2; 0.0;
     0.2; 1.0; 0.1;
     0.0; 0.1; 1.0 |]

let sim2 = [| 1.0; 0.3; 0.3; 1.0 |]

let services =
  [|
    { Network.sv_name = "os"; sv_products = [| "A"; "B"; "C" |];
      sv_similarity = sim3 };
    { Network.sv_name = "db"; sv_products = [| "X"; "Y" |];
      sv_similarity = sim2 };
  |]

let mk_net ?(graph = Gen.cycle 6) ?host_services () =
  let n = Graph.n_nodes graph in
  let hs h =
    match host_services with
    | Some f -> f h
    | None -> [ (0, [||]); (1, [||]) ]
  in
  Network.create ~graph ~services
    ~hosts:
      (Array.init n (fun h ->
           { Network.h_name = Printf.sprintf "h%d" h; h_services = hs h }))

(* -------------------------------------------------------------- network *)

let test_network_basics () =
  let net = mk_net () in
  Alcotest.(check int) "hosts" 6 (Network.n_hosts net);
  Alcotest.(check int) "services" 2 (Network.n_services net);
  Alcotest.(check int) "products os" 3 (Network.n_products net 0);
  Alcotest.(check (float 1e-9)) "similarity" 0.2
    (Network.similarity net ~service:0 0 1);
  Alcotest.(check bool) "runs service" true
    (Network.runs_service net ~host:0 ~service:1);
  Alcotest.(check int) "slots" 12 (Array.length (Network.slots net));
  Alcotest.(check bool) "find host" true (Network.find_host net "h3" = Some 3);
  Alcotest.(check bool) "find product" true
    (Network.find_product net ~service:0 "C" = Some 2)

let test_network_validation () =
  (* wrong host count *)
  (match
     Network.create ~graph:(Gen.cycle 3) ~services
       ~hosts:[| { Network.h_name = "x"; h_services = [] } |]
   with
  | _ -> Alcotest.fail "accepted host/graph mismatch"
  | exception Invalid_argument _ -> ());
  (* asymmetric similarity *)
  let bad =
    [| { Network.sv_name = "s"; sv_products = [| "a"; "b" |];
         sv_similarity = [| 1.0; 0.1; 0.2; 1.0 |] } |]
  in
  (match
     Network.create ~graph:(Gen.cycle 3) ~services:bad
       ~hosts:
         (Array.init 3 (fun i ->
              { Network.h_name = string_of_int i; h_services = [] }))
   with
  | _ -> Alcotest.fail "accepted asymmetric similarity"
  | exception Invalid_argument _ -> ());
  (* duplicate candidate *)
  match
    mk_net
      ~host_services:(fun _ -> [ (0, [| 1; 1 |]) ])
      ()
  with
  | _ -> Alcotest.fail "accepted duplicate candidate"
  | exception Invalid_argument _ -> ()

let test_candidates () =
  let net =
    mk_net ~host_services:(fun h -> if h = 0 then [ (0, [| 2 |]) ] else
        [ (0, [||]); (1, [||]) ]) ()
  in
  Alcotest.(check (array int)) "restricted" [| 2 |]
    (Network.candidates net ~host:0 ~service:0);
  Alcotest.(check (array int)) "all" [| 0; 1; 2 |]
    (Network.candidates net ~host:1 ~service:0);
  match Network.candidates net ~host:0 ~service:1 with
  | _ -> Alcotest.fail "host 0 does not run db"
  | exception Invalid_argument _ -> ()

(* ----------------------------------------------------------- assignment *)

let test_assignment_make_get () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host ~service -> (host + service) mod 2) in
  Alcotest.(check int) "get" 1 (Assignment.get a ~host:0 ~service:1);
  Alcotest.(check bool) "get_opt none" true
    (let net' =
       mk_net ~host_services:(fun h -> if h = 0 then [] else [ (0, [||]) ]) ()
     in
     let a' = Assignment.first_candidate net' in
     Assignment.get_opt a' ~host:0 ~service:0 = None)

let test_assignment_rejects_non_candidate () =
  let net = mk_net ~host_services:(fun _ -> [ (0, [| 0; 1 |]) ]) () in
  match Assignment.make net (fun ~host:_ ~service:_ -> 2) with
  | _ -> Alcotest.fail "accepted non-candidate product"
  | exception Invalid_argument _ -> ()

let test_mono_assignment () =
  let net = mk_net () in
  let a = Assignment.mono net in
  Alcotest.(check int) "one product deployed" 1
    (Assignment.distinct_products a ~service:0);
  (* mono maximizes pairwise energy among our baselines *)
  let r = Assignment.random ~rng:(rng 1) net in
  Alcotest.(check bool) "mono >= random energy" true
    (Assignment.pairwise_energy a >= Assignment.pairwise_energy r -. 1e-9)

let test_mono_respects_candidates () =
  (* host 0 cannot run the popular product; falls back *)
  let net =
    mk_net
      ~host_services:(fun h ->
        if h = 0 then [ (0, [| 2 |]) ] else [ (0, [| 0; 1 |]) ])
      ()
  in
  let a = Assignment.mono net in
  Alcotest.(check int) "fallback" 2 (Assignment.get a ~host:0 ~service:0)

let test_pairwise_energy_cycle () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  (* cycle of 6: six edges, both services identical -> sim 1 + 1 per edge *)
  Alcotest.(check (float 1e-9)) "all same" 12.0 (Assignment.pairwise_energy a);
  let rates = Assignment.edge_infection_rates a in
  Alcotest.(check int) "six edges" 6 (List.length rates);
  List.iter
    (fun (_, sims) ->
      Alcotest.(check (array (float 1e-9))) "per-service" [| 1.0; 1.0 |] sims)
    rates

(* ----------------------------------------------------------- constraint *)

let test_constraint_validate () =
  let net = mk_net () in
  let ok = Constr.Fix { host = 0; service = 0; product = 1 } in
  Alcotest.(check bool) "valid fix" true (Constr.validate net ok = Ok ());
  let bad_product = Constr.Fix { host = 0; service = 0; product = 9 } in
  Alcotest.(check bool) "invalid product" true
    (Result.is_error (Constr.validate net bad_product));
  let bad_host = Constr.Fix { host = 99; service = 0; product = 0 } in
  Alcotest.(check bool) "invalid host" true
    (Result.is_error (Constr.validate net bad_host));
  let not_candidate =
    let net' = mk_net ~host_services:(fun _ -> [ (0, [| 0 |]) ]) () in
    Constr.validate net' (Constr.Fix { host = 0; service = 0; product = 1 })
  in
  Alcotest.(check bool) "not a candidate" true (Result.is_error not_candidate);
  let same_service =
    Constr.Requires
      { scope = Constr.All; service_m = 0; product_j = 0; service_n = 0;
        product_l = 1 }
  in
  Alcotest.(check bool) "same service twice" true
    (Result.is_error (Constr.validate net same_service))

let test_constraint_satisfied () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host:_ ~service -> if service = 0 then 1 else 0) in
  Alcotest.(check bool) "fix holds" true
    (Constr.satisfied net a (Constr.Fix { host = 2; service = 0; product = 1 }));
  Alcotest.(check bool) "fix broken" false
    (Constr.satisfied net a (Constr.Fix { host = 2; service = 0; product = 0 }));
  let requires =
    Constr.Requires
      { scope = Constr.All; service_m = 0; product_j = 1; service_n = 1;
        product_l = 0 }
  in
  Alcotest.(check bool) "requires holds" true (Constr.satisfied net a requires);
  let forbids =
    Constr.Forbids
      { scope = Constr.All; service_m = 0; product_j = 1; service_n = 1;
        product_k = 0 }
  in
  Alcotest.(check bool) "forbids broken" false (Constr.satisfied net a forbids);
  (* conditional: antecedent false -> vacuously satisfied *)
  let vacuous =
    Constr.Forbids
      { scope = Constr.All; service_m = 0; product_j = 2; service_n = 1;
        product_k = 0 }
  in
  Alcotest.(check bool) "vacuous" true (Constr.satisfied net a vacuous)

let test_apply_fixes () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  let cs = [ Constr.Fix { host = 3; service = 1; product = 1 } ] in
  let a' = Constr.apply_fixes net cs a in
  Alcotest.(check int) "fixed" 1 (Assignment.get a' ~host:3 ~service:1);
  Alcotest.(check int) "others kept" 0 (Assignment.get a' ~host:2 ~service:1)

(* --------------------------------------------------------------- encode *)

let test_encode_shape () =
  let net = mk_net () in
  let e = Encode.encode net [] in
  Alcotest.(check int) "vars = slots" 12 (Encode.n_vars e);
  (* cycle: 6 links x 2 shared services = 12 similarity edges *)
  Alcotest.(check int) "mrf edges" 12
    (Netdiv_mrf.Mrf.n_edges (Encode.mrf e));
  let v = Option.get (Encode.var_of e ~host:2 ~service:1) in
  Alcotest.(check (pair int int)) "slot round-trip" (2, 1)
    (Encode.slot_of e v)

let test_encode_fix_restricts () =
  let net = mk_net () in
  let e =
    Encode.encode net [ Constr.Fix { host = 0; service = 0; product = 2 } ]
  in
  let v = Option.get (Encode.var_of e ~host:0 ~service:0) in
  Alcotest.(check (array int)) "single label" [| 2 |] (Encode.labels_of e v);
  (* conflicting fixes rejected *)
  match
    Encode.encode net
      [ Constr.Fix { host = 0; service = 0; product = 2 };
        Constr.Fix { host = 0; service = 0; product = 1 } ]
  with
  | _ -> Alcotest.fail "accepted conflicting fixes"
  | exception Invalid_argument _ -> ()

let test_encode_decode_roundtrip () =
  let net = mk_net () in
  let e = Encode.encode net [] in
  let a = Assignment.random ~rng:(rng 5) net in
  let labeling = Encode.labeling_of e a in
  let a' = Encode.decode e labeling in
  Alcotest.(check bool) "round-trip" true (Assignment.equal a a')

let test_encode_energy_matches () =
  (* MRF energy = prconst * slots + pairwise similarity sum *)
  let net = mk_net () in
  let e = Encode.encode ~prconst:0.25 net [] in
  let a = Assignment.random ~rng:(rng 9) net in
  Alcotest.(check (float 1e-9)) "energy decomposition"
    ((0.25 *. 12.0) +. Assignment.pairwise_energy a)
    (Encode.assignment_energy e a)

let test_encode_combo_penalty () =
  let net = mk_net () in
  let forbids =
    Constr.Forbids
      { scope = Constr.Host 0; service_m = 0; product_j = 0; service_n = 1;
        product_k = 1 }
  in
  let e = Encode.encode ~big_m:1000.0 net [ forbids ] in
  let violating =
    Assignment.make net (fun ~host:_ ~service -> if service = 0 then 0 else 1)
  in
  let fine =
    Assignment.make net (fun ~host:_ ~service -> if service = 0 then 0 else 0)
  in
  Alcotest.(check bool) "penalized" true
    (Encode.assignment_energy e violating
     -. Encode.assignment_energy e fine > 900.0)

(* ------------------------------------------------------------- optimize *)

let test_optimize_unconstrained () =
  let net = mk_net ~graph:(Gen.cycle 6) () in
  let r = Optimize.run net [] in
  Alcotest.(check bool) "constraints ok" true r.Optimize.constraints_ok;
  (* even cycle with a zero-similarity product pair: service 0 can
     2-color with A/C (sim 0); service 1 best alternation costs 0.3/edge *)
  let mono = Assignment.mono net in
  Alcotest.(check bool) "beats mono" true
    (Assignment.pairwise_energy r.Optimize.assignment
     < Assignment.pairwise_energy mono);
  Alcotest.(check (float 1e-6)) "service-0 perfectly diverse" 1.8
    (Assignment.pairwise_energy r.Optimize.assignment)

let test_optimize_respects_fix () =
  let net = mk_net () in
  let cs =
    [ Constr.Fix { host = 0; service = 0; product = 1 };
      Constr.Fix { host = 3; service = 1; product = 1 } ]
  in
  let r = Optimize.run net cs in
  Alcotest.(check bool) "ok" true r.Optimize.constraints_ok;
  Alcotest.(check int) "fix 1" 1
    (Assignment.get r.Optimize.assignment ~host:0 ~service:0);
  Alcotest.(check int) "fix 2" 1
    (Assignment.get r.Optimize.assignment ~host:3 ~service:1)

let test_optimize_respects_combos () =
  let net = mk_net () in
  let cs =
    [ Constr.Forbids
        { scope = Constr.All; service_m = 0; product_j = 0; service_n = 1;
          product_k = 0 };
      Constr.Requires
        { scope = Constr.Host 1; service_m = 0; product_j = 1; service_n = 1;
          product_l = 1 } ]
  in
  let r = Optimize.run net cs in
  Alcotest.(check bool) "combos satisfied" true r.Optimize.constraints_ok

let test_optimize_solver_ablation () =
  let net = mk_net ~graph:(Gen.gnm ~rng:(rng 11) ~n:30 ~m:90) () in
  let trws_icm = Optimize.run ~solver:Optimize.Trws_icm net [] in
  let trws = Optimize.run ~solver:Optimize.Trws net [] in
  let icm = Optimize.run ~solver:Optimize.Icm net [] in
  let bp = Optimize.run ~solver:Optimize.Bp net [] in
  (* the ICM polish can only improve the raw TRW-S decode *)
  Alcotest.(check bool) "polish helps" true
    (trws_icm.Optimize.energy <= trws.Optimize.energy +. 1e-9);
  (* the dual bound is valid for every solver's primal *)
  List.iter
    (fun (r : Optimize.report) ->
      Alcotest.(check bool) "bound below every primal" true
        (trws.Optimize.lower_bound <= r.Optimize.energy +. 1e-9))
    [ trws_icm; trws; icm; bp ];
  (* and every solver beats the homogeneous deployment *)
  let e = Encode.encode net [] in
  let mono = Encode.assignment_energy e (Assignment.mono net) in
  List.iter
    (fun (r : Optimize.report) ->
      Alcotest.(check bool) "beats mono" true (r.Optimize.energy < mono))
    [ trws_icm; trws; icm; bp ]

let test_optimize_exact_on_small () =
  (* brute-force certificate on a tiny instance *)
  let net = mk_net ~graph:(Gen.line 4) () in
  let e = Encode.encode net [] in
  let exact = Netdiv_mrf.Brute.solve (Encode.mrf e) in
  let r = Optimize.run net [] in
  Alcotest.(check (float 1e-6)) "optimal on trees"
    exact.Netdiv_mrf.Solver.energy r.Optimize.energy

let test_refine_respects_new_constraint () =
  let net = mk_net () in
  let base = Optimize.run net [] in
  let fresh = [ Constr.Fix { host = 0; service = 0; product = 1 } ] in
  let refined = Optimize.refine ~previous:base.Optimize.assignment net fresh in
  Alcotest.(check bool) "constraints ok" true refined.Optimize.constraints_ok;
  Alcotest.(check int) "fix applied" 1
    (Assignment.get refined.Optimize.assignment ~host:0 ~service:0);
  (* warm-started refinement stays close to the full re-solve *)
  let full = Optimize.run net fresh in
  Alcotest.(check bool) "close to full re-solve" true
    (refined.Optimize.energy <= full.Optimize.energy +. 0.5)

let test_refine_improves_bad_start () =
  let net = mk_net () in
  let mono = Assignment.mono net in
  let refined = Optimize.refine ~previous:mono net [] in
  let e = Encode.encode net [] in
  Alcotest.(check bool) "improves mono" true
    (refined.Optimize.energy < Encode.assignment_energy e mono)

let test_refine_edge_weight () =
  let net = mk_net () in
  let base = Optimize.run net [] in
  let refined =
    Optimize.refine ~edge_weight:(fun _ _ -> 2.0)
      ~previous:base.Optimize.assignment net []
  in
  (* doubled weights double the pairwise part of the energy *)
  Alcotest.(check bool) "weighted energy larger" true
    (refined.Optimize.energy > base.Optimize.energy)

(* ----------------------------------------------------------------- cost *)

(* product 0 of each service is the expensive incumbent; others free *)
let incumbent_cost ~host:_ ~service:_ ~product =
  if product = 0 then 3.0 else 0.0

let test_cost_total () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  Alcotest.(check (float 1e-9)) "all incumbent" 36.0
    (Cost.total_cost incumbent_cost a);
  let b = Assignment.make net (fun ~host:_ ~service:_ -> 1) in
  Alcotest.(check (float 1e-9)) "all free" 0.0
    (Cost.total_cost incumbent_cost b)

let test_cost_lambda_zero_is_plain () =
  let net = mk_net () in
  let plain = Optimize.run net [] in
  let p = Cost.optimize ~cost:incumbent_cost ~lambda:0.0 net [] in
  (* Cost.point.energy is measured under the plain encoding, which
     already carries the Pr_const unaries *)
  Alcotest.(check (float 1e-6)) "same energy" plain.Optimize.energy
    p.Cost.energy

let test_cost_tradeoff_monotone () =
  let net = mk_net () in
  let cheap = Cost.optimize ~cost:incumbent_cost ~lambda:50.0 net [] in
  let free = Cost.optimize ~cost:incumbent_cost ~lambda:0.0 net [] in
  Alcotest.(check bool) "paying for cost lowers cost" true
    (cheap.Cost.cost <= free.Cost.cost);
  Alcotest.(check bool) "and can only raise energy" true
    (cheap.Cost.energy >= free.Cost.energy -. 1e-9);
  Alcotest.(check (float 1e-9)) "high lambda avoids the incumbent" 0.0
    cheap.Cost.cost

let test_cost_pareto () =
  let net = mk_net () in
  let points =
    Cost.pareto ~cost:incumbent_cost ~lambdas:[ 0.0; 0.01; 0.1; 1.0; 10.0 ]
      net []
  in
  Alcotest.(check bool) "non-empty" true (points <> []);
  (* sorted by cost, strictly improving energy *)
  let rec check_front = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "cost sorted" true (a.Cost.cost <= b.Cost.cost);
        Alcotest.(check bool) "energy improves" true
          (b.Cost.energy < a.Cost.energy);
        check_front rest
    | _ -> ()
  in
  check_front points

let test_cost_budget () =
  let net = mk_net () in
  (match Cost.cheapest_under ~cost:incumbent_cost ~budget:0.0 net [] with
  | Some p -> Alcotest.(check (float 1e-9)) "budget met" 0.0 p.Cost.cost
  | None -> Alcotest.fail "a zero-cost assignment exists");
  match Cost.cheapest_under ~cost:incumbent_cost ~budget:1e9 net [] with
  | Some p ->
      (* unconstrained budget: the plain optimum *)
      let plain = Optimize.run net [] in
      Alcotest.(check bool) "plain optimum affordable" true
        (p.Cost.energy
        <= plain.Optimize.energy +. 1e-6)
  | None -> Alcotest.fail "every assignment is affordable"

let test_cost_validation () =
  let net = mk_net () in
  (match Cost.optimize ~cost:incumbent_cost ~lambda:(-1.0) net [] with
  | _ -> Alcotest.fail "accepted negative lambda"
  | exception Invalid_argument _ -> ());
  match
    Cost.optimize
      ~cost:(fun ~host:_ ~service:_ ~product:_ -> -1.0)
      ~lambda:1.0 net []
  with
  | _ -> Alcotest.fail "accepted negative cost"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------------- serial *)

let test_network_roundtrip () =
  let net = mk_net ~host_services:(fun h ->
      if h = 0 then [ (0, [| 1; 2 |]) ] else [ (0, [||]); (1, [||]) ]) () in
  match Serial.network_of_string (Serial.network_to_string ~pretty:true net) with
  | Error e -> Alcotest.fail e
  | Ok net' ->
      Alcotest.(check int) "hosts" (Network.n_hosts net) (Network.n_hosts net');
      Alcotest.(check int) "edges"
        (Graph.n_edges (Network.graph net))
        (Graph.n_edges (Network.graph net'));
      Alcotest.(check (array int)) "restricted candidates survive" [| 1; 2 |]
        (Network.candidates net' ~host:0 ~service:0);
      Alcotest.(check (array int)) "full candidates survive" [| 0; 1; 2 |]
        (Network.candidates net' ~host:1 ~service:0);
      Alcotest.(check (float 1e-12)) "similarity survives"
        (Network.similarity net ~service:0 0 1)
        (Network.similarity net' ~service:0 0 1)

let test_assignment_roundtrip () =
  let net = mk_net () in
  let a = Assignment.random ~rng:(rng 21) net in
  match Serial.assignment_of_string net (Serial.assignment_to_string a) with
  | Ok a' -> Alcotest.(check bool) "equal" true (Assignment.equal a a')
  | Error e -> Alcotest.fail e

let test_casestudy_roundtrip () =
  (* the big one: the whole ICS network survives serialization and the
     deserialized instance optimizes to the same energy *)
  let net = Netdiv_casestudy.Products.network () in
  match Serial.network_of_string (Serial.network_to_string net) with
  | Error e -> Alcotest.fail e
  | Ok net' ->
      let r = Optimize.run net [] and r' = Optimize.run net' [] in
      Alcotest.(check (float 1e-9)) "same optimal energy" r.Optimize.energy
        r'.Optimize.energy

let test_serial_errors () =
  List.iter
    (fun s ->
      match Serial.network_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "{}"; {|{"services":[],"hosts":[],"links":3}|};
      {|{"services":[],"hosts":[{"name":"a","services":[{"service":"nope"}]}],"links":[]}|};
      {|{"services":[{"name":"s","products":["p"],"similarity":[1.0]}],"hosts":[{"name":"a","services":[]}],"links":[["a","b"]]}|} ];
  let net = mk_net () in
  match Serial.assignment_of_string net {|{"assignment":[]}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted incomplete assignment"

let test_serial_similarity_range () =
  (* similarity entries feed MRF energies directly; NaN or out-of-range
     values must be rejected with a path-qualified error *)
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let doc entry =
    Printf.sprintf
      {|{"services":[{"name":"db","products":["p","q"],"similarity":[1.0,%s,%s,1.0]}],"hosts":[],"links":[]}|}
      entry entry
  in
  List.iter
    (fun entry ->
      match Serial.network_of_string (doc entry) with
      | Ok _ -> Alcotest.failf "accepted similarity %s" entry
      | Error e ->
          Alcotest.(check bool)
            (entry ^ ": error is path-qualified")
            true
            (contains e "service \"db\"" && contains e "similarity[1]"))
    [ "-0.5"; "1.5" ];
  (* NaN cannot be written in JSON text, but a hand-built document can
     still carry one *)
  let module Json = Netdiv_vuln.Json in
  let nan_doc =
    Json.Object
      [
        ( "services",
          Json.List
            [
              Json.Object
                [
                  ("name", Json.String "db");
                  ("products", Json.List [ Json.String "p"; Json.String "q" ]);
                  ( "similarity",
                    Json.List
                      [
                        Json.Number 1.0; Json.Number nan; Json.Number nan;
                        Json.Number 1.0;
                      ] );
                ];
            ] );
        ("hosts", Json.List []);
        ("links", Json.List []);
      ]
  in
  (match Serial.network_of_json nan_doc with
  | Ok _ -> Alcotest.fail "accepted a NaN similarity"
  | Error e ->
      Alcotest.(check bool) "nan: error is path-qualified" true
        (contains e "similarity[1]"));
  (* boundary values are legal *)
  match Serial.network_of_string (doc "1.0") with
  | Ok _ -> (
      match Serial.network_of_string (doc "0.0") with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let test_fully_frozen_network () =
  (* every candidate list is a singleton: nothing to optimize, but the
     whole pipeline must still work (the paper's pure-legacy limit) *)
  let net =
    mk_net ~host_services:(fun h ->
        [ (0, [| h mod 3 |]); (1, [| h mod 2 |]) ]) ()
  in
  let r = Optimize.run net [] in
  Alcotest.(check bool) "ok" true r.Optimize.constraints_ok;
  let forced = Assignment.first_candidate net in
  Alcotest.(check bool) "the only assignment" true
    (Assignment.equal r.Optimize.assignment forced);
  (* and the bound is exactly the energy: a frozen problem is trivially
     certified *)
  Alcotest.(check (float 1e-6)) "tight" r.Optimize.energy
    r.Optimize.lower_bound

(* ------------------------------------------------------------------ viz *)

let test_viz_dot () =
  let net = mk_net () in
  let a = Assignment.make net (fun ~host:_ ~service:_ -> 0) in
  let dot = Viz.assignment_dot ~entry:0 ~target:5 a in
  let contains needle =
    let rec search i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || search (i + 1))
    in
    search 0
  in
  Alcotest.(check bool) "host label" true (contains "h3");
  Alcotest.(check bool) "product label" true (contains "A");
  Alcotest.(check bool) "entry shape" true (contains "shape=house");
  Alcotest.(check bool) "target shape" true (contains "shape=doubleoctagon");
  (* a mono assignment has identical products on every edge: highways *)
  Alcotest.(check bool) "worm highways highlighted" true
    (contains "color=red")

(* ------------------------------------------------------------- property *)

let net_gen =
  QCheck2.Gen.(
    let* seed = 0 -- 10_000 in
    let* n = 3 -- 12 in
    let* m = n -- (n * (n - 1) / 2) in
    return (mk_net ~graph:(Gen.gnm ~rng:(Random.State.make [| seed |]) ~n ~m) ()))

let prop_optimizer_beats_baselines =
  QCheck2.Test.make ~count:30
    ~name:"optimized energy <= mono and <= random" net_gen (fun net ->
      let r = Optimize.run net [] in
      let e = Encode.encode net [] in
      let mono = Encode.assignment_energy e (Assignment.mono net) in
      let rand =
        Encode.assignment_energy e (Assignment.random ~rng:(rng 17) net)
      in
      r.Optimize.energy <= mono +. 1e-9 && r.Optimize.energy <= rand +. 1e-9)

let prop_serial_roundtrip =
  QCheck2.Test.make ~count:25
    ~name:"serialization round-trips random networks" net_gen (fun net ->
      match Serial.network_of_string (Serial.network_to_string net) with
      | Error _ -> false
      | Ok net' ->
          Network.n_hosts net = Network.n_hosts net'
          && Graph.edges (Network.graph net) = Graph.edges (Network.graph net')
          &&
          let a = Assignment.first_candidate net in
          let a' = Assignment.first_candidate net' in
          Assignment.pairwise_energy a = Assignment.pairwise_energy a')

let prop_fixes_always_respected =
  QCheck2.Test.make ~count:30 ~name:"Fix constraints always hold" net_gen
    (fun net ->
      let cs = [ Constr.Fix { host = 0; service = 0; product = 2 } ] in
      let r = Optimize.run net cs in
      r.Optimize.constraints_ok
      && Assignment.get r.Optimize.assignment ~host:0 ~service:0 = 2)

let () =
  Alcotest.run "core"
    [
      ( "network",
        [
          Alcotest.test_case "basics" `Quick test_network_basics;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "candidates" `Quick test_candidates;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "make/get" `Quick test_assignment_make_get;
          Alcotest.test_case "rejects non-candidates" `Quick
            test_assignment_rejects_non_candidate;
          Alcotest.test_case "mono" `Quick test_mono_assignment;
          Alcotest.test_case "mono respects candidates" `Quick
            test_mono_respects_candidates;
          Alcotest.test_case "pairwise energy" `Quick
            test_pairwise_energy_cycle;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "validate" `Quick test_constraint_validate;
          Alcotest.test_case "satisfied" `Quick test_constraint_satisfied;
          Alcotest.test_case "apply_fixes" `Quick test_apply_fixes;
        ] );
      ( "encode",
        [
          Alcotest.test_case "shape" `Quick test_encode_shape;
          Alcotest.test_case "fix restricts labels" `Quick
            test_encode_fix_restricts;
          Alcotest.test_case "decode round-trip" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "energy decomposition" `Quick
            test_encode_energy_matches;
          Alcotest.test_case "combination penalty" `Quick
            test_encode_combo_penalty;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "unconstrained beats mono" `Quick
            test_optimize_unconstrained;
          Alcotest.test_case "respects Fix" `Quick test_optimize_respects_fix;
          Alcotest.test_case "respects combinations" `Quick
            test_optimize_respects_combos;
          Alcotest.test_case "solver ablation" `Quick
            test_optimize_solver_ablation;
          Alcotest.test_case "exact on a tree" `Quick
            test_optimize_exact_on_small;
          Alcotest.test_case "refine respects new constraint" `Quick
            test_refine_respects_new_constraint;
          Alcotest.test_case "refine improves a bad start" `Quick
            test_refine_improves_bad_start;
          Alcotest.test_case "refine with edge weights" `Quick
            test_refine_edge_weight;
        ] );
      ( "cost",
        [
          Alcotest.test_case "total cost" `Quick test_cost_total;
          Alcotest.test_case "lambda 0 = plain" `Quick
            test_cost_lambda_zero_is_plain;
          Alcotest.test_case "trade-off monotone" `Quick
            test_cost_tradeoff_monotone;
          Alcotest.test_case "pareto front" `Quick test_cost_pareto;
          Alcotest.test_case "budget bisection" `Quick test_cost_budget;
          Alcotest.test_case "validation" `Quick test_cost_validation;
        ] );
      ( "serial",
        [
          Alcotest.test_case "network round-trip" `Quick
            test_network_roundtrip;
          Alcotest.test_case "assignment round-trip" `Quick
            test_assignment_roundtrip;
          Alcotest.test_case "case-study round-trip" `Quick
            test_casestudy_roundtrip;
          Alcotest.test_case "malformed inputs" `Quick test_serial_errors;
          Alcotest.test_case "similarity range" `Quick
            test_serial_similarity_range;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "fully frozen network" `Quick
            test_fully_frozen_network;
        ] );
      ( "viz",
        [ Alcotest.test_case "assignment dot" `Quick test_viz_dot ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimizer_beats_baselines;
          QCheck_alcotest.to_alcotest prop_fixes_always_respected;
          QCheck_alcotest.to_alcotest prop_serial_roundtrip;
        ] );
    ]
