(* Tests for the diversity metrics d1 (effective richness), d2 / least
   attacking effort (k-zero-day safety) and the d3 re-export. *)

module Metrics = Netdiv_metrics.Metrics
module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment

let check_float = Alcotest.(check (float 1e-9))

(* one-service network over a line, [products] available everywhere *)
let line_net ?(n = 4) ?(products = [| "A"; "B" |]) ?similarity () =
  let p = Array.length products in
  let sim =
    match similarity with
    | Some s -> s
    | None ->
        Array.init (p * p) (fun idx ->
            if idx / p = idx mod p then 1.0 else 0.5)
  in
  Network.create ~graph:(Gen.line n)
    ~services:
      [| { Network.sv_name = "os"; sv_products = products;
           sv_similarity = sim } |]
    ~hosts:
      (Array.init n (fun h ->
           { Network.h_name = Printf.sprintf "h%d" h;
             h_services = [ (0, [||]) ] }))

let mono net = Assignment.make net (fun ~host:_ ~service:_ -> 0)
let alternating net = Assignment.make net (fun ~host ~service:_ -> host mod 2)

(* ------------------------------------------------------------------- d1 *)

let test_frequencies () =
  let net = line_net () in
  Alcotest.(check (array (float 1e-9))) "mono" [| 1.0; 0.0 |]
    (Metrics.product_frequencies (mono net) ~service:0);
  Alcotest.(check (array (float 1e-9))) "alternating" [| 0.5; 0.5 |]
    (Metrics.product_frequencies (alternating net) ~service:0)

let test_effective_richness () =
  let net = line_net () in
  check_float "mono richness 1" 1.0
    (Metrics.effective_richness (mono net) ~service:0);
  check_float "even split richness 2" 2.0
    (Metrics.effective_richness (alternating net) ~service:0)

let test_d1_bounds_and_order () =
  let net = line_net ~n:6 () in
  let d_mono = Metrics.d1 (mono net) in
  let d_alt = Metrics.d1 (alternating net) in
  check_float "mono = 1/n" (1.0 /. 6.0) d_mono;
  Alcotest.(check bool) "alternating more diverse" true (d_alt > d_mono);
  (* all distinct -> d1 = 1 *)
  let net4 = line_net ~n:4 ~products:[| "A"; "B"; "C"; "D" |] () in
  let distinct = Assignment.make net4 (fun ~host ~service:_ -> host) in
  check_float "all distinct" 1.0 (Metrics.d1 distinct)

(* ------------------------------------------------------------------- d2 *)

let exploits_of = List.map (fun (e : Metrics.exploit) -> (e.service, e.product))

let test_least_effort_mono () =
  let net = line_net ~n:5 () in
  match Metrics.least_effort (mono net) ~entry:0 ~target:4 with
  | Ok exploits ->
      Alcotest.(check (list (pair int int))) "one exploit suffices"
        [ (0, 0) ] (exploits_of exploits)
  | Error _ -> Alcotest.fail "expected a solution"

let test_least_effort_alternating () =
  let net = line_net ~n:5 () in
  match Metrics.least_effort (alternating net) ~entry:0 ~target:4 with
  | Ok exploits ->
      Alcotest.(check int) "two exploits needed" 2 (List.length exploits)
  | Error _ -> Alcotest.fail "expected a solution"

let test_least_effort_entry_is_target () =
  let net = line_net () in
  match Metrics.least_effort (mono net) ~entry:2 ~target:2 with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty exploit set"
  | Error _ -> Alcotest.fail "expected a solution"

let test_least_effort_unreachable () =
  let graph = Netdiv_graph.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let net =
    Network.create ~graph
      ~services:
        [| { Network.sv_name = "os"; sv_products = [| "A" |];
             sv_similarity = [| 1.0 |] } |]
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  match Metrics.least_effort (mono net) ~entry:0 ~target:3 with
  | Error `Unreachable -> ()
  | Ok _ | Error `Above_limit -> Alcotest.fail "expected Unreachable"

let test_least_effort_limit () =
  (* a 7-product rainbow path needs 6 exploits; limit 3 gives up *)
  let products = Array.init 7 (fun i -> Printf.sprintf "P%d" i) in
  let net = line_net ~n:7 ~products () in
  let rainbow = Assignment.make net (fun ~host ~service:_ -> host) in
  (match Metrics.least_effort ~limit:3 rainbow ~entry:0 ~target:6 with
  | Error `Above_limit -> ()
  | Ok _ | Error `Unreachable -> Alcotest.fail "expected Above_limit");
  match Metrics.least_effort ~limit:6 rainbow ~entry:0 ~target:6 with
  | Ok exploits -> Alcotest.(check int) "six exploits" 6 (List.length exploits)
  | Error _ -> Alcotest.fail "expected a solution"

let test_greedy_sound () =
  (* the greedy bound always yields a working exploit set >= the optimum *)
  let net = line_net ~n:6 ~products:[| "A"; "B"; "C" |] () in
  let a = Assignment.make net (fun ~host ~service:_ -> host mod 3) in
  match
    ( Metrics.least_effort a ~entry:0 ~target:5,
      Metrics.least_effort_greedy a ~entry:0 ~target:5 )
  with
  | Ok exact, Some greedy ->
      Alcotest.(check bool) "greedy >= exact" true
        (List.length greedy >= List.length exact);
      Alcotest.(check int) "exact is 3 here" 3 (List.length exact)
  | _ -> Alcotest.fail "expected solutions from both"

let test_d2_orders () =
  let net = line_net ~n:5 () in
  let d_mono = Metrics.d2 (mono net) ~entry:0 ~target:4 in
  let d_alt = Metrics.d2 (alternating net) ~entry:0 ~target:4 in
  Alcotest.(check bool) "diversified needs more effort" true (d_alt > d_mono);
  check_float "mono corridor: 1 exploit / 4 steps" 0.25 d_mono;
  check_float "alternating: 2 exploits / 4 steps" 0.5 d_alt;
  (* fully distinct corridor maximizes the ratio *)
  let net4 = line_net ~n:4 ~products:[| "A"; "B"; "C"; "D" |] () in
  let rainbow = Assignment.make net4 (fun ~host ~service:_ -> host) in
  check_float "rainbow = 1" 1.0 (Metrics.d2 rainbow ~entry:0 ~target:3);
  check_float "entry = target" 0.0 (Metrics.d2 (mono net) ~entry:2 ~target:2)

(* ---------------------------------------------------------- case study *)

let test_case_study_metrics () =
  let net = Netdiv_casestudy.Products.network () in
  let a = Netdiv_casestudy.Experiments.compute_assignments net in
  let entry = Netdiv_casestudy.Topology.host "c4" in
  let target = Netdiv_casestudy.Topology.host "t5" in
  let open Netdiv_casestudy.Experiments in
  (* richness: optimal deployment uses more effective products *)
  Alcotest.(check bool) "d1 optimal > mono" true
    (Metrics.d1 a.optimal > Metrics.d1 a.mono);
  (* least effort: the frozen Windows corridor (z4 -> t1 -> t5, all
     capable of running Win7) keeps k small for every assignment — the
     MRF objective minimizes total similarity, not path-wise exploit
     counts, so k-zero-day safety is a complementary lens, not a
     consequence *)
  let effort assignment =
    match Metrics.least_effort ~limit:6 assignment ~entry ~target with
    | Ok e -> List.length e
    | Error `Above_limit -> max_int
    | Error `Unreachable -> Alcotest.fail "t5 should be reachable"
  in
  Alcotest.(check int) "mono (with C1 fixes) needs two zero-days" 2
    (effort a.mono);
  Alcotest.(check bool) "every assignment falls within a few exploits" true
    (List.for_all
       (fun (_, assignment) -> effort assignment <= 3)
       (labelled a));
  (* d2 values are well-formed *)
  List.iter
    (fun (label, assignment) ->
      let d = Metrics.d2 assignment ~entry ~target in
      Alcotest.(check bool) (label ^ " d2 in range") true
        (d > 0.0 && d <= 1.0))
    (labelled a)

let () =
  Alcotest.run "metrics"
    [
      ( "d1",
        [
          Alcotest.test_case "frequencies" `Quick test_frequencies;
          Alcotest.test_case "effective richness" `Quick
            test_effective_richness;
          Alcotest.test_case "bounds and ordering" `Quick
            test_d1_bounds_and_order;
        ] );
      ( "d2",
        [
          Alcotest.test_case "mono needs one exploit" `Quick
            test_least_effort_mono;
          Alcotest.test_case "alternating needs two" `Quick
            test_least_effort_alternating;
          Alcotest.test_case "entry is target" `Quick
            test_least_effort_entry_is_target;
          Alcotest.test_case "unreachable" `Quick
            test_least_effort_unreachable;
          Alcotest.test_case "limit honored" `Quick test_least_effort_limit;
          Alcotest.test_case "greedy bound sound" `Quick test_greedy_sound;
          Alcotest.test_case "d2 ordering" `Quick test_d2_orders;
        ] );
      ( "casestudy",
        [
          Alcotest.test_case "metrics on the ICS" `Quick
            test_case_study_metrics;
        ] );
    ]
