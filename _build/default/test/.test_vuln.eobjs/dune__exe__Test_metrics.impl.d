test/test_metrics.ml: Alcotest Array List Netdiv_casestudy Netdiv_core Netdiv_graph Netdiv_metrics Printf
