test/test_vuln.ml: Alcotest Array Corpus Cpe Cve Cvss Feed Float Hashtbl Json List Netdiv_vuln Nvd Printf QCheck2 QCheck_alcotest Similarity String Weighted
