test/test_integration.ml: Alcotest Array Netdiv_bayes Netdiv_casestudy Netdiv_core Netdiv_graph Netdiv_sim Random
