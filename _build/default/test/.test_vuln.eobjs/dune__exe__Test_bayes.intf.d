test/test_bayes.mli:
