test/test_mrf.mli:
