test/test_bayes.ml: Alcotest Array Attack_bn Bn Dbn Factor Fun Hashtbl Infer List Mfactor Netdiv_bayes Netdiv_casestudy Netdiv_core Netdiv_graph Option Printf QCheck2 QCheck_alcotest Random
