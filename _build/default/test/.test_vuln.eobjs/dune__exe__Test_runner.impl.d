test/test_runner.ml: Alcotest Array Brute Float Format List Mrf Netdiv_core Netdiv_mrf Netdiv_workload Random Runner Solver String
