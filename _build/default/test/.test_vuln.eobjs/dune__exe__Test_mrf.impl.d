test/test_mrf.ml: Alcotest Array Bnb Bp Brute Icm List Mrf Netdiv_mrf Printf QCheck2 QCheck_alcotest Random Sa Solver Trws
