test/test_vuln.mli:
