test/test_graph.ml: Alcotest Array Cut Dot Gen Graph List Netdiv_graph Printf QCheck2 QCheck_alcotest Random Stats String Topologies Traversal
