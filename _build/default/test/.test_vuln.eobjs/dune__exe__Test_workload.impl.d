test/test_workload.ml: Alcotest Array Netdiv_core Netdiv_graph Netdiv_workload Random
