test/test_sim.ml: Alcotest Array Netdiv_core Netdiv_graph Netdiv_sim Printf QCheck2 QCheck_alcotest Random Unix
