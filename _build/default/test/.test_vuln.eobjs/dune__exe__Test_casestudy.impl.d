test/test_casestudy.ml: Alcotest Array Experiments List Netdiv_casestudy Netdiv_core Netdiv_graph Netdiv_sim Printf Products Scaled Topology
