(* bench_page: render the local benchmark history as one static,
   dependency-free HTML page.

     dune exec tools/bench_page.exe -- [HISTORY_DIR] [OUT.html]

   Reads every bench_history/BENCH_*.json snapshot (the files
   tools/check.sh writes after each bench smoke), groups the runs by
   tier (smoke / full / default — their workloads differ, so their
   series must not be mixed), and emits one inline-SVG sparkline per
   (section, metric) series.  No JavaScript, no external assets: the
   page is a single self-contained file, safe to open from disk or to
   publish as a CI artifact.  Defaults: HISTORY_DIR = bench_history,
   OUT = HISTORY_DIR/index.html. *)

module J = Bench_json

type run = { r_label : string; r_tier : string; r_sections : J.section list }

let ends_with suffix s =
  let ls = String.length s and lf = String.length suffix in
  ls >= lf && String.sub s (ls - lf) lf = suffix

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let load_runs dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 11
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare (* BENCH_<utc-timestamp>.json sorts by time *)
  in
  List.filter_map
    (fun f ->
      match J.read_file (Filename.concat dir f) with
      | src ->
          let label = Filename.chop_suffix f ".json" in
          let label =
            (* BENCH_20260808T120000Z -> 2026-08-08 12:00 *)
            if String.length label >= 19 then
              Printf.sprintf "%s-%s-%s %s:%s"
                (String.sub label 6 4) (String.sub label 10 2)
                (String.sub label 12 2) (String.sub label 15 2)
                (String.sub label 17 2)
            else label
          in
          (* fold the run's provenance header (commit, hostname, jobs)
             into the label: every point tooltip then answers "which
             commit and machine produced this number" *)
          let meta = J.meta src in
          let extras =
            List.filter_map
              (fun k ->
                Option.map (fun v -> k ^ " " ^ v) (List.assoc_opt k meta))
              [ "commit"; "hostname"; "jobs" ]
          in
          let label =
            match extras with
            | [] -> label
            | l -> label ^ " (" ^ String.concat ", " l ^ ")"
          in
          Some { r_label = label; r_tier = J.tier src;
                 r_sections = J.parse_sections src }
      | exception Sys_error _ -> None)
    files

(* One sparkline: values drawn left-to-right, vertical span normalized
   to the series' own min..max (a flat series draws a midline).  Each
   point carries its run label and value as a hover tooltip.  [band]
   lists (index, lo, hi) cycle-spread envelopes for a subset of the
   points; when nonempty it is drawn as a filled polygon behind the
   line and widens the normalization range. *)
let sparkline ?(band = []) buf points =
  let w = 260 and h = 44 and pad = 4 in
  let vals =
    List.map snd points
    @ List.concat_map (fun (_, blo, bhi) -> [ blo; bhi ]) band
  in
  let lo = List.fold_left Float.min infinity vals in
  let hi = List.fold_left Float.max neg_infinity vals in
  let n = List.length points in
  let x i =
    if n <= 1 then float_of_int (w / 2)
    else
      float_of_int pad
      +. float_of_int (i * (w - (2 * pad))) /. float_of_int (n - 1)
  in
  let y v =
    if hi <= lo then float_of_int (h / 2)
    else
      float_of_int (h - pad)
      -. ((v -. lo) /. (hi -. lo) *. float_of_int (h - (2 * pad)))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">" w h w h);
  if List.length band > 1 then begin
    Buffer.add_string buf "<polygon fill=\"#c9d7ea\" stroke=\"none\" \
                           points=\"";
    List.iter
      (fun (i, blo, _) ->
        Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (x i) (y blo)))
      band;
    List.iter
      (fun (i, _, bhi) ->
        Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (x i) (y bhi)))
      (List.rev band);
    Buffer.add_string buf "\"/>"
  end;
  if n > 1 then begin
    Buffer.add_string buf "<polyline fill=\"none\" stroke=\"#3465a4\" \
                           stroke-width=\"1.5\" points=\"";
    List.iteri
      (fun i (_, v) ->
        Buffer.add_string buf (Printf.sprintf "%.1f,%.1f " (x i) (y v)))
      points;
    Buffer.add_string buf "\"/>"
  end;
  List.iteri
    (fun i (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.2\" \
            fill=\"#204a87\"><title>%s: %g</title></circle>"
           (x i) (y v) (html_escape label) v))
    points;
  Buffer.add_string buf "</svg>"

let render buf tier runs =
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s tier (%d runs)</h2>\n" (html_escape tier)
       (List.length runs));
  (* section/metric universe in first-appearance order across runs *)
  let order = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          List.iter
            (fun (k, _) ->
              if not (Hashtbl.mem seen (s.J.s_name, k)) then begin
                Hashtbl.add seen (s.J.s_name, k) ();
                order := (s.J.s_name, k) :: !order
              end)
            s.J.metrics)
        r.r_sections)
    runs;
  let pairs = List.rev !order in
  (* group by section while keeping first-appearance order for both
     sections and their metrics (a metric first seen in a later run
     joins its section's existing group) *)
  let by_section =
    let sec_order = ref [] and tbl = Hashtbl.create 16 in
    List.iter
      (fun (sec, k) ->
        match Hashtbl.find_opt tbl sec with
        | None ->
            Hashtbl.add tbl sec (ref [ k ]);
            sec_order := sec :: !sec_order
        | Some ks -> ks := k :: !ks)
      pairs;
    List.rev_map (fun s -> (s, List.rev !(Hashtbl.find tbl s))) !sec_order
  in
  List.iter
    (fun (sec, keys) ->
      Buffer.add_string buf
        (Printf.sprintf "<h3>%s</h3>\n<table>\n" (html_escape sec));
      Buffer.add_string buf
        "<tr><th>metric</th><th>trend</th><th>last</th><th>min</th>\
         <th>max</th></tr>\n";
      (* _min_s/_med_s/_max_s metrics are the cycle-spread band of
         their headline sibling (solve_1j_min_s belongs to solve_1j_s):
         they render as a filled envelope behind the headline's
         sparkline, not as rows of their own *)
      let band_sibling key =
        List.exists
          (fun suffix ->
            ends_with suffix key
            && List.mem
                 (String.sub key 0
                    (String.length key - String.length suffix)
                 ^ "_s")
                 keys)
          [ "_min_s"; "_med_s"; "_max_s" ]
      in
      List.iter
        (fun key ->
          if not (band_sibling key) then begin
            let rows =
              List.filter_map
                (fun r ->
                  Option.map
                    (fun v ->
                      let sib suffix =
                        if not (ends_with "_s" key) then None
                        else
                          J.find r.r_sections sec
                            (String.sub key 0 (String.length key - 2)
                            ^ suffix)
                      in
                      (r.r_label, v, sib "_min_s", sib "_max_s"))
                    (J.find r.r_sections sec key))
                runs
            in
            if rows <> [] then begin
              let points = List.map (fun (l, v, _, _) -> (l, v)) rows in
              let band =
                List.concat
                  (List.mapi
                     (fun i (_, _, mn, mx) ->
                       match (mn, mx) with
                       | Some a, Some b -> [ (i, a, b) ]
                       | _ -> [])
                     rows)
              in
              let vals = List.map snd points in
              let last = List.nth vals (List.length vals - 1) in
              let lo = List.fold_left Float.min infinity vals in
              let hi = List.fold_left Float.max neg_infinity vals in
              Buffer.add_string buf
                (Printf.sprintf "<tr><td>%s</td><td>" (html_escape key));
              sparkline ~band buf points;
              Buffer.add_string buf
                (Printf.sprintf
                   "</td><td>%g</td><td>%g</td><td>%g</td></tr>\n" last lo
                   hi)
            end
          end)
        keys;
      Buffer.add_string buf "</table>\n")
    by_section

let () =
  let dir, out =
    match Sys.argv with
    | [| _ |] -> ("bench_history", Filename.concat "bench_history" "index.html")
    | [| _; d |] -> (d, Filename.concat d "index.html")
    | [| _; d; o |] -> (d, o)
    | _ ->
        prerr_endline "usage: bench_page [HISTORY_DIR] [OUT.html]";
        exit 2
  in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "bench_page: no history directory %s\n" dir;
    exit 2
  end;
  let runs = load_runs dir in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n\
     <title>netdiv benchmark history</title>\n<style>\n\
     body { font: 14px/1.4 system-ui, sans-serif; margin: 2em; \
     color: #222; }\n\
     table { border-collapse: collapse; margin-bottom: 1.5em; }\n\
     th, td { border: 1px solid #ccc; padding: 2px 8px; \
     text-align: right; }\n\
     th { background: #eee; } td:first-child { text-align: left; \
     font-family: monospace; }\n\
     h2 { border-bottom: 2px solid #3465a4; }\n\
     </style></head><body>\n<h1>netdiv benchmark history</h1>\n";
  if runs = [] then
    Buffer.add_string buf
      "<p>No snapshots yet — run tools/check.sh to record one.</p>\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf
         "<p>%d snapshot(s) from <code>%s</code>; hover a point for the \
          run's timestamp and value.  Series are split by bench tier \
          because the tiers run different workloads.</p>\n"
         (List.length runs) (html_escape dir));
    List.iter
      (fun tier ->
        match List.filter (fun r -> r.r_tier = tier) runs with
        | [] -> ()
        | rs -> render buf tier rs)
      [ "smoke"; "default"; "full" ]
  end;
  Buffer.add_string buf "</body></html>\n";
  let oc = open_out_bin out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "bench_page: wrote %s (%d runs)\n" out (List.length runs)
