(* bench_diff: guard the benchmark metrics that this repository treats
   as performance contracts.

     dune exec tools/bench_diff.exe -- BASELINE.json FRESH.json

   Reads two BENCH.json reports (via the shared Bench_json scanner),
   compares the watched metrics and exits nonzero when the fresh run
   regresses beyond the tolerance (default 25%, override with
   NETDIV_BENCH_TOL, e.g. 0.10).  Watched:

   - [scalability_speedup.solve_1j_s]: the serial solve of the smoke
     instance — the paper's headline scalability cost (lower is better);
   - [observability_overhead.solve_off_s]: the same solve with the
     Netdiv_obs instrumentation compiled in but disabled — this is the
     cross-commit form of the "tracing off costs <= 3%" contract (the
     in-process form lives in bench/main.ml itself);
   - [recorder_overhead.solve_off_s], plus an absolute (baseline-free)
     gate on [recorder_overhead.overhead_on_pct]: a solve with the
     convergence flight recorder installed stays within 3% of the
     recorder-free time;
   - every [kernel_specialization.*_s] timing (lower is better) and
     [kernel_specialization.*_speedup] ratio (higher is better): the
     structure-specialized message kernels must keep their edge over the
     generic O(L^2) update;
   - [lint_analysis.lint_full_s]: the whole-repo interprocedural effect
     analysis (lower is better), fingerprinted by the number of
     analyzed bindings — the workload is the repository itself;
   - [hierarchical_scale.solve_s] and [hierarchical_scale.words_per_host]:
     the zoned 100k-tier solve time and the compact model's memory
     density (both lower is better) — the storage contract of the CSR
     refactor;
   - [interning_memory.words_per_host]: the same density on the classic
     1,000-host encoding.

   When both reports carry a watched timing's [_med_s] variance-band
   sibling (bench/main.ml emits min/median/max of the timing cycles),
   the medians are compared instead of the best-of headline numbers —
   the median resists single-cycle scheduler noise.

   Metrics missing from the baseline are reported informationally and
   never fail: that is how a new metric enters the history.  Each
   watched section also carries a workload fingerprint (the solver
   energy for the scalability instance, the label count for the kernel
   micro-benchmark): when the fingerprint differs between the two
   reports the workload itself was redefined, timings are incomparable,
   and the section is skipped with a note instead of failing — the
   commit that redefines a benchmark is the new baseline.  tools/
   check.sh snapshots each fresh report into bench_history/ so local
   regressions can be bisected by timestamp (tools/bench_page renders
   that history as a static trend page). *)

module J = Bench_json

let tolerance =
  match Sys.getenv_opt "NETDIV_BENCH_TOL" with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some t when t > 0.0 && Float.is_finite t -> t
      | _ ->
          prerr_endline "bench_diff: ignoring malformed NETDIV_BENCH_TOL";
          0.25)
  | None -> 0.25

let ends_with suffix s =
  let ls = String.length s and lf = String.length suffix in
  ls >= lf && String.sub s (ls - lf) lf = suffix

(* (section, metric, lower_is_better) triples to guard; kernel metrics
   are discovered from the fresh report so new kernels join the watch
   list automatically.  [wall_s] is the section's own wall clock
   (instance construction included) — never a watched timing. *)
let watched fresh =
  ( [ ("scalability_speedup", "solve_1j_s", true);
      ("intra_component_speedup", "solve_1j_s", true);
      ("observability_overhead", "solve_off_s", true);
      ("recorder_overhead", "solve_off_s", true);
      ("fault_overhead", "solve_off_s", true);
      ("lint_analysis", "lint_full_s", true);
      ("hierarchical_scale", "solve_s", true);
      ("hierarchical_scale", "words_per_host", true);
      ("interning_memory", "words_per_host", true) ]
  @ List.concat_map
      (fun s ->
        if s.J.s_name <> "kernel_specialization" then []
        else
          List.filter_map
            (fun (k, _) ->
              if k = "wall_s" then None
              else if ends_with "_s" k then Some (s.J.s_name, k, true)
              else if ends_with "_speedup" k then Some (s.J.s_name, k, false)
              else None)
            s.J.metrics)
      fresh )

(* Workload fingerprint per watched section: if this metric differs
   between baseline and fresh, the benchmark's instance was redefined
   and its timings are incomparable. *)
let fingerprint = function
  | "scalability_speedup" -> Some "solver_energy"
  | "intra_component_speedup" -> Some "solver_energy"
  | "observability_overhead" -> Some "solver_energy"
  | "recorder_overhead" -> Some "solver_energy"
  | "fault_overhead" -> Some "solver_energy"
  | "kernel_specialization" -> Some "labels"
  (* the smoke and full tiers run different zoned instances; the solver
     energy separates them *)
  | "hierarchical_scale" -> Some "solver_energy"
  | "interning_memory" -> Some "edges"
  (* the lint workload is the repository itself: a commit that changes
     the number of analyzed bindings redefined the benchmark *)
  | "lint_analysis" -> Some "lint_bindings"
  | _ -> None

let workload_changed baseline fresh sec =
  match fingerprint sec with
  | None -> None
  | Some key -> (
      match (J.find baseline sec key, J.find fresh sec key) with
      | Some b, Some f when b <> f -> Some (key, b, f)
      | _ -> None)

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
        prerr_endline "usage: bench_diff BASELINE.json FRESH.json";
        exit 2
  in
  let baseline = J.parse_sections (J.read_file baseline_path) in
  let fresh = J.parse_sections (J.read_file fresh_path) in
  if fresh = [] then begin
    Printf.eprintf "bench_diff: no sections found in %s\n" fresh_path;
    exit 2
  end;
  let regressions = ref 0 in
  Printf.printf "bench_diff: tolerance %.0f%% (baseline %s)\n"
    (100.0 *. tolerance) baseline_path;
  let skipped = Hashtbl.create 4 in
  List.iter
    (fun (sec, key, lower_better) ->
      match workload_changed baseline fresh sec with
      | Some (fp, b, f) ->
          if not (Hashtbl.mem skipped sec) then begin
            Hashtbl.replace skipped sec ();
            Printf.printf
              "  skip    %s.* (workload redefined: %s %g -> %g; fresh run \
               is the new baseline)\n"
              sec fp b f
          end
      | None -> (
      (* when both runs carry the _med_s variance-band sibling of a
         watched timing, compare the medians: the median of the cycle
         array moves with real regressions but not with a single
         scheduler hiccup the min/best-of would also absorb *)
      let key =
        if not (ends_with "_s" key) then key
        else
          let med = String.sub key 0 (String.length key - 2) ^ "_med_s" in
          if
            Option.is_some (J.find baseline sec med)
            && Option.is_some (J.find fresh sec med)
          then med
          else key
      in
      match (J.find baseline sec key, J.find fresh sec key) with
      | _, None -> ()
      | None, Some f ->
          Printf.printf "  new     %s.%s = %g (no baseline)\n" sec key f
      | Some b, Some f ->
          let ratio = if b = 0.0 then 1.0 else f /. b in
          let bad =
            if lower_better then ratio > 1.0 +. tolerance
            else ratio < 1.0 -. tolerance
          in
          Printf.printf "  %s %s.%s: %g -> %g (%+.1f%%)\n"
            (if bad then "REGRESS" else "ok     ")
            sec key b f
            (100.0 *. (ratio -. 1.0));
          if bad then incr regressions))
    (watched fresh);
  (* absolute contract, independent of any baseline: a solve with the
     flight recorder installed stays within 3% of the recorder-free
     time (bench/main.ml enforces the same bound in-process) *)
  (match J.find fresh "recorder_overhead" "overhead_on_pct" with
  | Some pct when pct > 3.0 ->
      Printf.printf "  REGRESS recorder_overhead.overhead_on_pct = %.1f%% \
                     (> 3%% absolute budget)\n" pct;
      incr regressions
  | Some pct ->
      Printf.printf "  ok      recorder_overhead.overhead_on_pct = %.1f%% \
                     (<= 3%% absolute budget)\n" pct
  | None -> ());
  if !regressions > 0 then begin
    Printf.printf "bench_diff: %d metric(s) regressed beyond %.0f%%\n"
      !regressions (100.0 *. tolerance);
    exit 1
  end;
  print_endline "bench_diff: no regressions"
