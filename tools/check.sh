#!/bin/sh
# Repository gate: build everything, run the netdiv-lint static checker,
# run the full test suite (alcotest, qcheck and the CLI cram test),
# re-run the pool suite with the NETDIV_SANITIZE race sanitizer enabled,
# run the fast benchmark smoke (parallel determinism, interning,
# message-kernel and observability-overhead sections, writes
# BENCH.json), diff the fresh report against the committed baseline
# with tools/bench_diff (>25% regression on watched metrics fails,
# snapshots land in bench_history/), validate that a traced optimize
# run emits a Chrome trace and a JSONL log that netdiv obs-summary
# accepts, and — when a .ocamlformat file is present — verify
# formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== netdiv lint (concurrency/determinism gate)"
dune build @lint

echo "== dune runtest"
dune runtest

echo "== pool tests under NETDIV_SANITIZE=1"
# dune does not track env vars, so run the test binary directly: the
# sanitizer must stay silent on the whole (race-free) pool suite.
NETDIV_SANITIZE=1 dune exec test/test_par.exe -- --compact

echo "== bench smoke (parallel determinism + interning + kernels)"
# keep the committed report as the regression baseline before the run
# overwrites it
baseline=""
if git show HEAD:BENCH.json >/dev/null 2>&1; then
  baseline=$(mktemp)
  git show HEAD:BENCH.json >"$baseline"
fi
NETDIV_BENCH_SMOKE=1 NETDIV_BENCH_RUNS=20 dune exec bench/main.exe

# timestamped local history for bisecting perf changes (untracked)
mkdir -p bench_history
cp BENCH.json "bench_history/BENCH_$(date -u +%Y%m%dT%H%M%SZ).json"

if [ -n "$baseline" ]; then
  echo "== bench regression gate (vs HEAD BENCH.json, 25% tolerance)"
  dune exec tools/bench_diff.exe -- "$baseline" BENCH.json
  rm -f "$baseline"
fi

echo "== traced optimize (Chrome trace + JSONL must round-trip)"
# the emitted traces must parse with the in-repo JSON reader and carry
# the spans the observability layer promises: solver sweeps on the
# default (TRW-S) path, pool parallel regions on the multi-job SA path.
tracedir=$(mktemp -d)
dune exec bin/netdiv.exe -- optimize --hosts 40 --degree 4 --services 3 \
  --trace "$tracedir/trace.json" >/dev/null
summary=$(dune exec bin/netdiv.exe -- obs-summary "$tracedir/trace.json")
echo "$summary" | grep -q '^format  chrome' || {
  echo "traced optimize did not produce a valid Chrome trace"; exit 1; }
echo "$summary" | grep -q 'trws\.sweep' || {
  echo "Chrome trace is missing trws.sweep spans"; exit 1; }
dune exec bin/netdiv.exe -- optimize --hosts 40 --degree 4 --services 3 \
  --solver sa --jobs 2 --trace "$tracedir/trace.jsonl" >/dev/null
summary=$(dune exec bin/netdiv.exe -- obs-summary "$tracedir/trace.jsonl")
echo "$summary" | grep -q '^format  jsonl' || {
  echo "traced optimize did not produce a valid JSONL trace"; exit 1; }
echo "$summary" | grep -q 'pool\.region' || {
  echo "JSONL trace is missing pool.region spans"; exit 1; }
rm -rf "$tracedir"

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
