#!/bin/sh
# Repository gate: build everything, run the full test suite (alcotest,
# qcheck and the CLI cram test), and — when a .ocamlformat file is
# present — verify formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
