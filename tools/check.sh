#!/bin/sh
# Repository gate: build everything, run the full test suite (alcotest,
# qcheck and the CLI cram test), run the fast benchmark smoke (parallel
# determinism + interning sections, writes BENCH.json), and — when a
# .ocamlformat file is present — verify formatting. Exits non-zero on
# the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (parallel determinism + interning)"
NETDIV_BENCH_SMOKE=1 NETDIV_BENCH_RUNS=20 dune exec bench/main.exe

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
