#!/bin/sh
# Repository gate: build everything, run the netdiv-lint static checker,
# run the full test suite (alcotest, qcheck and the CLI cram test),
# re-run the pool suite with the NETDIV_SANITIZE race sanitizer enabled,
# run the fast benchmark smoke (parallel determinism, interning and
# message-kernel sections, writes BENCH.json), diff the fresh report
# against the committed baseline with tools/bench_diff (>25% regression
# on watched metrics fails, snapshots land in bench_history/), and —
# when a .ocamlformat file is present — verify formatting. Exits
# non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== netdiv lint (concurrency/determinism gate)"
dune build @lint

echo "== dune runtest"
dune runtest

echo "== pool tests under NETDIV_SANITIZE=1"
# dune does not track env vars, so run the test binary directly: the
# sanitizer must stay silent on the whole (race-free) pool suite.
NETDIV_SANITIZE=1 dune exec test/test_par.exe -- --compact

echo "== bench smoke (parallel determinism + interning + kernels)"
# keep the committed report as the regression baseline before the run
# overwrites it
baseline=""
if git show HEAD:BENCH.json >/dev/null 2>&1; then
  baseline=$(mktemp)
  git show HEAD:BENCH.json >"$baseline"
fi
NETDIV_BENCH_SMOKE=1 NETDIV_BENCH_RUNS=20 dune exec bench/main.exe

# timestamped local history for bisecting perf changes (untracked)
mkdir -p bench_history
cp BENCH.json "bench_history/BENCH_$(date -u +%Y%m%dT%H%M%SZ).json"

if [ -n "$baseline" ]; then
  echo "== bench regression gate (vs HEAD BENCH.json, 25% tolerance)"
  dune exec tools/bench_diff.exe -- "$baseline" BENCH.json
  rm -f "$baseline"
fi

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
