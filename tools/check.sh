#!/bin/sh
# Repository gate: build everything, run the netdiv-lint static checker
# (surface + interprocedural effect analysis, diffed against the
# checked-in lint_baseline.json),
# run the full test suite (alcotest, qcheck and the CLI cram test),
# re-run the pool suite with the NETDIV_SANITIZE race sanitizer enabled,
# run the fast benchmark smoke (parallel determinism, interning,
# message-kernel and observability-overhead sections, writes
# BENCH.json), diff the fresh report against the committed baseline
# with tools/bench_diff (>25% regression on watched metrics fails,
# snapshots land in bench_history/), validate that a traced optimize
# run emits a Chrome trace and a JSONL log that netdiv obs-summary
# accepts, run the chaos gate (a fixed NETDIV_FAULT schedule must
# recover to the fault-free assignment and replay bitwise), run the
# flight-recorder gate (a degraded run must dump a black box that
# netdiv report renders, and a zoned solve must attribute its dual gap
# per zone), and — when
# a .ocamlformat file is present — verify formatting. Exits non-zero
# on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== netdiv lint (effect analysis gate, baseline-diffed)"
# the @lint alias runs
#   netdiv lint --format json --baseline lint_baseline.json lib bin
# with test/bench/examples/tools as reference roots; any finding that is
# neither suppressed inline nor accepted (with a reason) in the
# checked-in baseline fails the gate
dune build @lint

echo "== dune runtest"
dune runtest

echo "== pool + mrf tests under NETDIV_SANITIZE=1"
# dune does not track env vars, so run the test binaries directly: the
# sanitizer must stay silent on the whole (race-free) pool suite and on
# the MRF suite, which exercises the partitioned TRW-S and chromatic BP
# schedules across job counts.
NETDIV_SANITIZE=1 dune exec test/test_par.exe -- --compact
NETDIV_SANITIZE=1 dune exec test/test_mrf.exe -- --compact

echo "== bench smoke (parallel determinism + interning + kernels)"
# keep the committed report as the regression baseline before the run
# overwrites it
baseline=""
if git show HEAD:BENCH.json >/dev/null 2>&1; then
  baseline=$(mktemp)
  git show HEAD:BENCH.json >"$baseline"
fi
NETDIV_BENCH_SMOKE=1 NETDIV_BENCH_RUNS=20 dune exec bench/main.exe

# timestamped local history for bisecting perf changes (untracked);
# write-then-rename so an interrupted gate never leaves a torn snapshot
mkdir -p bench_history
snap="bench_history/BENCH_$(date -u +%Y%m%dT%H%M%SZ).json"
cp BENCH.json "$snap.tmp" && mv "$snap.tmp" "$snap"

# static trend page over the accumulated snapshots (inline SVG, no
# dependencies) — open bench_history/index.html to eyeball regressions
echo "== bench trend page"
dune exec tools/bench_page.exe

if [ -n "$baseline" ]; then
  echo "== bench regression gate (vs HEAD BENCH.json, 25% tolerance)"
  dune exec tools/bench_diff.exe -- "$baseline" BENCH.json
  rm -f "$baseline"
fi

echo "== traced optimize (Chrome trace + JSONL must round-trip)"
# the emitted traces must parse with the in-repo JSON reader and carry
# the spans the observability layer promises: solver sweeps on the
# default (TRW-S) path, pool parallel regions on the multi-job SA path.
tracedir=$(mktemp -d)
dune exec bin/netdiv.exe -- optimize --hosts 40 --degree 4 --services 3 \
  --trace "$tracedir/trace.json" >/dev/null
summary=$(dune exec bin/netdiv.exe -- obs-summary "$tracedir/trace.json")
echo "$summary" | grep -q '^format  chrome' || {
  echo "traced optimize did not produce a valid Chrome trace"; exit 1; }
echo "$summary" | grep -q 'trws\.sweep' || {
  echo "Chrome trace is missing trws.sweep spans"; exit 1; }
dune exec bin/netdiv.exe -- optimize --hosts 40 --degree 4 --services 3 \
  --solver sa --jobs 2 --trace "$tracedir/trace.jsonl" >/dev/null
summary=$(dune exec bin/netdiv.exe -- obs-summary "$tracedir/trace.jsonl")
echo "$summary" | grep -q '^format  jsonl' || {
  echo "traced optimize did not produce a valid JSONL trace"; exit 1; }
echo "$summary" | grep -q 'pool\.region' || {
  echo "JSONL trace is missing pool.region spans"; exit 1; }
rm -rf "$tracedir"

echo "== chaos gate (fault injection, recovery, replay determinism)"
# A fixed NETDIV_FAULT schedule crashes every dispatched pool chunk,
# kills the first runner stage attempt and tears the first checkpoint
# write.  The solve must still complete with the fault-free assignment
# (pool recovery + stage retry), report its retry count and fired
# schedule, and replaying the recorded schedule must reproduce the run
# bitwise (modulo wall-clock, which sed strips).
chaosdir=$(mktemp -d)
chaos_run() {
  rm -f "$chaosdir/ck.json" "$chaosdir/ck.json.tmp"
  NETDIV_FAULT="$1" dune exec bin/netdiv.exe -- optimize --hosts 1000 \
    --degree 10 --services 5 --solver sa --jobs 4 \
    --checkpoint "$chaosdir/ck.json" | sed 's/, [0-9.]*s$//'
}
chaos_run "" >"$chaosdir/clean.out"
chaos_run "rate=1.0,only=pool.chunk,runner.stage@0,io.write.truncate@0" \
  >"$chaosdir/chaos.out"
grep -q '^retries' "$chaosdir/chaos.out" || {
  echo "chaos run did not record a stage retry"; exit 1; }
schedule=$(sed -n 's/^faults  *//p' "$chaosdir/chaos.out")
[ -n "$schedule" ] || {
  echo "chaos run did not report its fault schedule"; exit 1; }
case "$schedule" in
  *pool.chunk@*) ;;
  *) echo "chaos run did not crash a pool chunk"; exit 1;;
esac
grep '^optimal' "$chaosdir/clean.out" >"$chaosdir/clean.energy"
grep '^optimal' "$chaosdir/chaos.out" >"$chaosdir/chaos.energy"
cmp -s "$chaosdir/clean.energy" "$chaosdir/chaos.energy" || {
  echo "chaos run diverged from the fault-free solve"; exit 1; }
chaos_run "$schedule" >"$chaosdir/replay1.out"
chaos_run "$schedule" >"$chaosdir/replay2.out"
cmp "$chaosdir/replay1.out" "$chaosdir/replay2.out" || {
  echo "fault replay is not deterministic"; exit 1; }
rm -rf "$chaosdir"

echo "== flight recorder gate (black box under degradation + report)"
# A chaos schedule that kills every attempt of the first stage forces
# the runner down its degradation ladder; the runner must dump the
# flight recorder as it degrades, and netdiv report must parse the dump
# and show the degradation mark.  A zoned scalability solve must yield
# per-zone gap attribution through the same pipeline.
flightdir=$(mktemp -d)
NETDIV_FAULT="runner.stage@0,runner.stage@1,runner.stage@2" \
  dune exec bin/netdiv.exe -- optimize --hosts 40 --degree 4 --services 3 \
  --time-budget 5 --flight-record "$flightdir/degraded.json" \
  >"$flightdir/degraded.out"
grep -q '^outcome degraded' "$flightdir/degraded.out" || {
  echo "fault schedule did not degrade the runner"; exit 1; }
report=$(dune exec bin/netdiv.exe -- report "$flightdir/degraded.json")
echo "$report" | grep -q '^reason   degraded' || {
  echo "flight record of a degraded run lacks the degradation reason"
  exit 1; }
echo "$report" | grep -q 'degrade:' || {
  echo "flight record is missing the degradation mark"; exit 1; }
dune exec bin/netdiv.exe -- scalability --hosts 2000 --zones 4 \
  --flight-record "$flightdir/zoned.json" >/dev/null
report=$(dune exec bin/netdiv.exe -- report "$flightdir/zoned.json")
echo "$report" | grep -q 'zone gap attribution' || {
  echo "zoned flight record lacks per-zone gap attribution"; exit 1; }
echo "$report" | grep -q 'boundary reconciliation' || {
  echo "zoned flight record lacks boundary reconciliation rounds"; exit 1; }
rm -rf "$flightdir"

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
