#!/bin/sh
# Repository gate: build everything, run the netdiv-lint static checker,
# run the full test suite (alcotest, qcheck and the CLI cram test),
# re-run the pool suite with the NETDIV_SANITIZE race sanitizer enabled,
# run the fast benchmark smoke (parallel determinism + interning
# sections, writes BENCH.json), and — when a .ocamlformat file is
# present — verify formatting. Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== netdiv lint (concurrency/determinism gate)"
dune build @lint

echo "== dune runtest"
dune runtest

echo "== pool tests under NETDIV_SANITIZE=1"
# dune does not track env vars, so run the test binary directly: the
# sanitizer must stay silent on the whole (race-free) pool suite.
NETDIV_SANITIZE=1 dune exec test/test_par.exe -- --compact

echo "== bench smoke (parallel determinism + interning)"
NETDIV_BENCH_SMOKE=1 NETDIV_BENCH_RUNS=20 dune exec bench/main.exe

if [ -f .ocamlformat ]; then
  echo "== dune fmt (check)"
  dune build @fmt
fi

echo "OK"
