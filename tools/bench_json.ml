(* Shared reader for the BENCH.json reports bench/main.ml writes — used
   by bench_diff (regression gate) and bench_page (trend page).

   The scanner is not a JSON parser: it reads a stream of ["key": value]
   pairs where a ["name"] key opens a new section and numeric values
   attach to the currently open one.  It relies on bench/main.ml
   emitting code-controlled identifiers with no escapes, which is
   exactly the writer's documented contract. *)

type section = { s_name : string; metrics : (string * float) list }

let parse_sections src =
  let len = String.length src in
  let sections = ref [] in
  let cur_name = ref None in
  let cur = ref [] in
  let flush () =
    (match !cur_name with
    | Some n -> sections := { s_name = n; metrics = List.rev !cur } :: !sections
    | None -> ());
    cur_name := None;
    cur := []
  in
  let i = ref 0 in
  while !i < len do
    if src.[!i] <> '"' then incr i
    else begin
      let j = String.index_from src (!i + 1) '"' in
      let key = String.sub src (!i + 1) (j - !i - 1) in
      i := j + 1;
      while !i < len && (src.[!i] = ' ' || src.[!i] = '\n') do
        incr i
      done;
      if !i < len && src.[!i] = ':' then begin
        incr i;
        while !i < len && src.[!i] = ' ' do
          incr i
        done;
        if !i < len && src.[!i] = '"' then begin
          (* string value: only "name" carries one *)
          let k = String.index_from src (!i + 1) '"' in
          let v = String.sub src (!i + 1) (k - !i - 1) in
          i := k + 1;
          if key = "name" then begin
            flush ();
            cur_name := Some v
          end
        end
        else begin
          let start = !i in
          while
            !i < len
            && not (src.[!i] = ',' || src.[!i] = '}' || src.[!i] = '\n')
          do
            incr i
          done;
          match
            float_of_string_opt (String.trim (String.sub src start (!i - start)))
          with
          | Some v when Option.is_some !cur_name -> cur := (key, v) :: !cur
          | _ -> ()
        end
      end
    end
  done;
  flush ();
  List.rev !sections

(* String-valued header fields ("commit", "hostname", "jobs", ...)
   emitted before the first section; the scan stops at the first "name"
   key, where section data begins. *)
let meta src =
  let len = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < len do
    if src.[!i] <> '"' then incr i
    else begin
      let j = String.index_from src (!i + 1) '"' in
      let key = String.sub src (!i + 1) (j - !i - 1) in
      i := j + 1;
      while !i < len && (src.[!i] = ' ' || src.[!i] = '\n') do
        incr i
      done;
      if !i < len && src.[!i] = ':' then begin
        incr i;
        while !i < len && src.[!i] = ' ' do
          incr i
        done;
        if !i < len && src.[!i] = '"' then begin
          let k = String.index_from src (!i + 1) '"' in
          let v = String.sub src (!i + 1) (k - !i - 1) in
          i := k + 1;
          if key = "name" then stop := true else out := (key, v) :: !out
        end
      end
    end
  done;
  List.rev !out

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find sections section key =
  List.find_map
    (fun s -> if s.s_name = section then List.assoc_opt key s.metrics else None)
    sections

(* Tier of a report, read off the header the writer emits before the
   first section ("full_sweep": ..., "smoke": ...). *)
let tier src =
  let has needle =
    let nl = String.length needle and sl = String.length src in
    let rec go i =
      i + nl <= sl && (String.sub src i nl = needle || go (i + 1))
    in
    go 0
  in
  if has "\"smoke\": true" then "smoke"
  else if has "\"full_sweep\": true" then "full"
  else "default"
